// Table 5 — MSC parameter settings per benchmark on a single Sunway CG /
// Matrix processor: grid size, tile size, reorder rule.  Also verifies
// that every Sunway tile fits the 64 KB SPM.

#include <cstdio>

#include "support/strings.hpp"
#include "support/table.hpp"
#include "workload/report.hpp"
#include "workload/stencils.hpp"

int main() {
  using namespace msc;
  workload::print_banner("Table 5 — MSC parameter settings (single Sunway CG / Matrix)",
                         "tile sizes and reorder rules per benchmark");

  TextTable t({"Stencil", "Grid Size", "Sunway Tile", "Matrix Tile", "Reorder Rule",
               "Sunway SPM use"});
  for (const auto& info : workload::all_benchmarks()) {
    const std::string grid =
        info.ndim == 2 ? strprintf("%ld^2", static_cast<long>(info.grid[0]))
                       : strprintf("%ld^3", static_cast<long>(info.grid[0]));
    auto fmt_tile = [&](const std::array<std::int64_t, 3>& tile) {
      return info.ndim == 2 ? strprintf("(%ld,%ld)", static_cast<long>(tile[0]),
                                        static_cast<long>(tile[1]))
                            : strprintf("(%ld,%ld,%ld)", static_cast<long>(tile[0]),
                                        static_cast<long>(tile[1]),
                                        static_cast<long>(tile[2]));
    };
    const std::string reorder = info.ndim == 2 ? "(xo,yo,xi,yi)" : "(xo,yo,zo,xi,yi,zi)";

    auto prog = workload::make_program(info, ir::DataType::f64);
    workload::apply_msc_schedule(*prog, info, "sunway");
    const double spm =
        static_cast<double>(prog->primary_schedule().spm_bytes()) / (64.0 * 1024.0);

    t.add_row({info.name, grid, fmt_tile(info.sunway_tile), fmt_tile(info.matrix_tile), reorder,
               strprintf("%.0f%%", spm * 100.0)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
