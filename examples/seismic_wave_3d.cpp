// 3-D acoustic wave propagation — the paper's motivating use case for
// stencils with *multiple time dependencies* (§1: second-order wave
// equations update a point from neighbors in both space and time).
//
// The second-order leapfrog discretization of u_tt = c^2 laplace(u) is
//
//   u[t] = 2 u[t-1] - u[t-2] + C * laplace(u[t-1])        (C = c^2 dt^2/h^2)
//
// which MSC expresses directly as a Stencil combining TWO kernels at two
// previous timesteps:
//
//   Stencil st:  Res[t] << K_prop[t-1] + (-1) * K_ident[t-2]
//
// where K_prop = 2u + C*lap(u) and K_ident = u.  A point source is fired
// in the domain center and the expanding wavefront is tracked at probes.
//
//   $ ./seismic_wave_3d

#include <cmath>
#include <cstdio>

#include "dsl/program.hpp"
#include "workload/report.hpp"

int main() {
  using namespace msc;
  using dsl::ExprH;

  const std::int64_t N = 64;
  const double C = 0.2;  // CFL-stable Courant factor

  dsl::Program prog("wave3d");
  dsl::Var k = prog.var("k"), j = prog.var("j"), i = prog.var("i");
  dsl::GridRef U = prog.def_tensor_3d_timewin("U", /*time_deps=*/2, /*halo=*/1,
                                              ir::DataType::f64, N, N, N);

  // Propagation kernel: 2u + C * 7-point Laplacian.
  dsl::KernelHandle& prop = prog.kernel(
      "propagate", {k, j, i},
      ExprH(2.0 - 6.0 * C) * U(k, j, i) +
          ExprH(C) * (U(k, j, i - 1) + U(k, j, i + 1) + U(k, j - 1, i) + U(k, j + 1, i) +
                      U(k - 1, j, i) + U(k + 1, j, i)));
  prop.tile({4, 8, 32})
      .reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"})
      .parallel("k_outer", 4);

  // Identity kernel for the t-2 term.
  dsl::KernelHandle& ident = prog.kernel("identity", {k, j, i}, ExprH(1.0) * U(k, j, i));

  prog.def_stencil("wave", U, prop[prog.t() - 1] + (-1.0) * ident[prog.t() - 2]);

  // Point source: a Gaussian displacement at the center at t=0 and t=-1
  // (zero initial velocity).
  const double cx = N / 2.0;
  prog.set_initial([cx](std::int64_t, std::array<std::int64_t, 3> c) {
    const double d2 = (c[0] - cx) * (c[0] - cx) + (c[1] - cx) * (c[1] - cx) +
                      (c[2] - cx) * (c[2] - cx);
    return std::exp(-d2 / 8.0);
  });

  // Probes at increasing distance from the source along the i axis.
  const std::int64_t probes[] = {N / 2 + 4, N / 2 + 12, N / 2 + 20, N / 2 + 28};
  std::printf("step |");
  for (auto p : probes) std::printf("  probe r=%2lld |", static_cast<long long>(p - N / 2));
  std::printf("   energy\n");

  double arrival[4] = {0, 0, 0, 0};
  for (int t_end = 5; t_end <= 60; t_end += 5) {
    prog.run(t_end - 4, t_end);
    double energy = 0.0;
    for (std::int64_t a = 0; a < N; ++a)
      for (std::int64_t b = 0; b < N; ++b)
        for (std::int64_t c = 0; c < N; ++c) {
          const double v = prog.value_at(t_end, {a, b, c});
          energy += v * v;
        }
    std::printf("%4d |", t_end);
    for (int p = 0; p < 4; ++p) {
      const double v = prog.value_at(t_end, {N / 2, N / 2, probes[p]});
      if (arrival[p] == 0.0 && std::abs(v) > 1e-3) arrival[p] = t_end;
      std::printf("  %10.2e |", v);
    }
    std::printf("  %.3e\n", energy);
  }

  // Causality: the wavefront reaches nearer probes first.
  bool causal = arrival[0] > 0 && arrival[1] >= arrival[0] && arrival[2] >= arrival[1] &&
                arrival[3] >= arrival[2];
  std::printf("\nwavefront arrivals ordered by distance: %s\n", causal ? "yes" : "NO");
  std::printf("validation vs serial reference: max rel err %.3g\n",
              prog.relative_error_vs_reference(1, 30));
  return 0;
}
