// Distributed execution through the MSC communication library (paper §4.4,
// Fig. 6): a 2-D stencil is decomposed over a 2x2 process grid running on
// the in-process simulated MPI runtime, halos are exchanged asynchronously
// each timestep, and the gathered result is verified point-for-point
// against a single-node run.  Also AOT-generates the MPI-guarded C source
// the real cluster build would compile.
//
//   $ ./distributed_halo

#include <cmath>
#include <cstdio>
#include <vector>

#include "comm/halo_exchange.hpp"
#include "dsl/program.hpp"
#include "workload/report.hpp"

int main() {
  using namespace msc;
  using dsl::ExprH;

  const std::int64_t N = 64;
  const std::int64_t kSteps = 20;

  // A 9-point box smoother with two time dependencies.
  dsl::Program prog("dist2d");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  dsl::GridRef U = prog.def_tensor_2d_timewin("U", 2, 1, ir::DataType::f64, N, N);
  dsl::KernelHandle& K = prog.kernel(
      "box", {j, i},
      ExprH(0.2) * U(j, i) +
          ExprH(0.1) * (U(j, i - 1) + U(j, i + 1) + U(j - 1, i) + U(j + 1, i)) +
          ExprH(0.05) * (U(j - 1, i - 1) + U(j - 1, i + 1) + U(j + 1, i - 1) +
                         U(j + 1, i + 1)));
  prog.def_stencil("smooth", U, 0.7 * K[prog.t() - 1] + 0.3 * K[prog.t() - 2]);
  prog.def_shape_mpi({2, 2});
  const auto& st = prog.stencil();

  auto seed_value = [](std::int64_t t, std::int64_t gj, std::int64_t gi) {
    return std::sin(0.1 * static_cast<double>(gj)) * std::cos(0.1 * static_cast<double>(gi)) +
           0.01 * static_cast<double>(t);
  };

  // ---- single-node ground truth --------------------------------------
  exec::GridStorage<double> global(st.state());
  for (int back = 0; back < st.time_window() - 1; ++back) {
    const int slot = global.slot_for_time(-back);
    global.for_each_interior([&](std::array<std::int64_t, 3> c) {
      global.at(slot, c) = seed_value(-back, c[0], c[1]);
    });
  }
  exec::run_reference(st, global, 1, kSteps, exec::Boundary::ZeroHalo);

  // ---- distributed run over 2x2 ranks -----------------------------
  comm::CartDecomp dec({2, 2}, {N, N});
  comm::SimWorld world(dec.size());
  std::vector<double> worst(static_cast<std::size_t>(dec.size()), 0.0);
  std::vector<comm::DistRunStats> stats(static_cast<std::size_t>(dec.size()));

  world.run([&](comm::RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor("U", ir::DataType::f64,
                                           {dec.local_extent(r, 0), dec.local_extent(r, 1)},
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    const std::int64_t oj = dec.local_offset(r, 0), oi = dec.local_offset(r, 1);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        local.at(slot, c) = seed_value(-back, oj + c[0], oi + c[1]);
      });
    }
    stats[static_cast<std::size_t>(r)] = comm::run_distributed(ctx, dec, st, local, 1, kSteps);

    const int slot = local.slot_for_time(kSteps);
    local.for_each_interior([&](std::array<std::int64_t, 3> c) {
      const double want = global.at(global.slot_for_time(kSteps), {oj + c[0], oi + c[1], 0});
      worst[static_cast<std::size_t>(r)] =
          std::max(worst[static_cast<std::size_t>(r)], std::abs(local.at(slot, c) - want));
    });
  });

  std::printf("rank | sub-domain | messages sent | bytes sent | max abs diff vs single node\n");
  for (int r = 0; r < dec.size(); ++r) {
    std::printf("  %d  |  %lld x %lld   | %13lld | %10s | %.3e\n", r,
                static_cast<long long>(dec.local_extent(r, 0)),
                static_cast<long long>(dec.local_extent(r, 1)),
                static_cast<long long>(stats[static_cast<std::size_t>(r)].exchange.messages_sent),
                workload::fmt_bytes(static_cast<double>(
                                        stats[static_cast<std::size_t>(r)].exchange.bytes_sent))
                    .c_str(),
                worst[static_cast<std::size_t>(r)]);
  }

  // ---- the code a real cluster would build ---------------------------
  prog.primary_kernel().tile({16, 16}).reorder(
      {"j_outer", "i_outer", "j_inner", "i_inner"});
  prog.compile_to_source_code("c", "msc_generated_mpi");
  std::printf("\nMPI-guarded C source generated under ./msc_generated_mpi "
              "(build with -DMSC_WITH_MPI and mpicc for real clusters)\n");
  return 0;
}
