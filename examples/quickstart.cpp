// Quickstart — the paper's Listing 1 end to end.
//
// Builds the 3d7pt stencil with two time dependencies through the MSC DSL,
// applies the Listing-2 schedule (tile + reorder + SPM caching + athread
// parallelism), runs it on the host executor with the §5.1 correctness
// check, simulates it on a Sunway core group, and AOT-generates the
// Sunway master/slave sources plus a Makefile into ./msc_generated.
//
//   $ ./quickstart

#include <cstdio>

#include "dsl/program.hpp"
#include "exec/grid.hpp"
#include "machine/machine.hpp"
#include "sunway/cg_sim.hpp"
#include "workload/report.hpp"

int main() {
  using namespace msc;
  using dsl::ExprH;

  // ---- Listing 1: definition ------------------------------------------
  const std::int64_t N = 64;  // 256 in the paper; smaller for a quick demo
  dsl::Program prog("quickstart_3d7pt");
  dsl::Var k = prog.var("k"), j = prog.var("j"), i = prog.var("i");
  dsl::GridRef B = prog.def_tensor_3d_timewin("B", /*time_deps=*/2, /*halo=*/1,
                                              ir::DataType::f64, N, N, N);

  const double c0 = 0.4, c1 = 0.1;
  dsl::KernelHandle& S = prog.kernel(
      "S_3d7pt", {k, j, i},
      ExprH(c0) * B(k, j, i) + ExprH(c1) * B(k, j, i - 1) + ExprH(c1) * B(k, j, i + 1) +
          ExprH(c1) * B(k - 1, j, i) + ExprH(c1) * B(k + 1, j, i) +
          ExprH(c1) * B(k, j - 1, i) + ExprH(c1) * B(k, j + 1, i));

  // ---- Listing 2: schedule primitives -----------------------------------
  S.tile({2, 8, 32})
      .reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"})
      .cache_read("B", "buffer_read", "global")
      .cache_write("buffer_write", "global")
      .compute_at("buffer_read", "i_outer")
      .compute_at("buffer_write", "i_outer")
      .parallel("k_outer", 64);

  // Res[t] << S[t-1] + S[t-2], weighted for stability.
  prog.def_stencil("st_3d7pt", B, 0.6 * S[prog.t() - 1] + 0.4 * S[prog.t() - 2]);
  prog.def_shape_mpi({4, 4, 4});

  std::printf("%s\n", prog.dump().c_str());

  // ---- host execution + paper §5.1 validation -----------------------
  prog.input(B, /*seed=*/42);
  const auto run = prog.run(1, 10);
  std::printf("host run: 10 timesteps over %lld points in %s (%s points/s)\n",
              static_cast<long long>(run.stats.points_updated),
              workload::fmt_seconds(run.seconds).c_str(),
              workload::fmt_bytes(static_cast<double>(run.stats.points_updated) / run.seconds)
                  .c_str());
  const double err = prog.relative_error_vs_reference(1, 10);
  std::printf("max relative error vs serial reference: %.3g  (paper criterion < 1e-10)\n", err);

  // ---- Sunway core-group functional simulation ----------------------
  exec::GridStorage<double> grid(prog.stencil().state());
  for (int s = 0; s < grid.slots(); ++s) grid.fill_random(s, 42);
  const auto sw = sunway::run_cg_sim(prog.stencil(), prog.primary_schedule(), grid, 1, 10,
                                     exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  std::printf("\nSunway CG simulation: %s simulated for 10 steps\n",
              workload::fmt_seconds(sw.seconds).c_str());
  std::printf("  SPM utilization %.0f%%, DMA %s in %lld transactions, reuse factor %.1f\n",
              sw.spm_utilization * 100.0, workload::fmt_bytes(static_cast<double>(sw.dma.bytes)).c_str(),
              static_cast<long long>(sw.dma.transactions), sw.reuse_factor);

  // ---- AOT code generation -----------------------------------------
  for (const auto* target : {"c", "openmp", "sunway"}) {
    prog.compile_to_source_code(target, "msc_generated");
    std::printf("generated %s sources under ./msc_generated\n", target);
  }
  return 0;
}
