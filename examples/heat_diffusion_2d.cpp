// 2-D heat diffusion — a physically meaningful single-time-dependency
// stencil (the FDM discretization of du/dt = alpha * laplace(u)).
//
// A hot square is placed in the center of a cold plate with Dirichlet-zero
// edges; the explicit Euler update
//
//   u[t] = u[t-1] + r * (u_N + u_S + u_E + u_W - 4 u)      (r = alpha dt/h^2)
//
// runs for a few hundred steps.  The example demonstrates set_initial,
// long time loops through the sliding window, physical invariants (maximum
// principle, monotone heat loss through the boundary) and value probing.
//
//   $ ./heat_diffusion_2d

#include <cstdio>

#include "dsl/program.hpp"
#include "workload/report.hpp"

int main() {
  using namespace msc;
  using dsl::ExprH;

  const std::int64_t N = 128;
  const double r = 0.2;  // stability requires r <= 0.25

  dsl::Program prog("heat2d");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  dsl::GridRef U = prog.def_tensor_2d_timewin("U", /*time_deps=*/1, /*halo=*/1,
                                              ir::DataType::f64, N, N);

  dsl::KernelHandle& K = prog.kernel(
      "heat", {j, i},
      ExprH(1.0 - 4.0 * r) * U(j, i) +
          ExprH(r) * (U(j, i - 1) + U(j, i + 1) + U(j - 1, i) + U(j + 1, i)));
  K.tile({16, 32})
      .reorder({"j_outer", "i_outer", "j_inner", "i_inner"})
      .parallel("j_outer", 4);
  prog.def_stencil("step", U, K[prog.t() - 1]);

  // Hot 20x20 square (1000 K) centered on a 300 K plate.
  prog.set_initial([N](std::int64_t, std::array<std::int64_t, 3> c) {
    const bool hot = std::abs(c[0] - N / 2) < 10 && std::abs(c[1] - N / 2) < 10;
    return hot ? 1000.0 : 300.0;
  });

  std::printf("step | center temp | corner temp | plate total\n");
  double prev_total = 0.0;
  bool monotone = true, max_principle = true;
  for (int chunk = 0; chunk < 6; ++chunk) {
    const std::int64_t t_begin = chunk * 50 + 1, t_end = t_begin + 49;
    prog.run(t_begin, t_end);

    double total = 0.0, peak = 0.0;
    for (std::int64_t a = 0; a < N; ++a)
      for (std::int64_t b = 0; b < N; ++b) {
        const double v = prog.value_at(t_end, {a, b, 0});
        total += v;
        peak = std::max(peak, v);
      }
    std::printf("%4lld | %11.1f | %11.1f | %11.0f\n", static_cast<long long>(t_end),
                prog.value_at(t_end, {N / 2, N / 2, 0}), prog.value_at(t_end, {1, 1, 0}),
                total);

    // Physical invariants of the explicit heat equation with cold edges.
    if (peak > 1000.0 + 1e-9) max_principle = false;
    if (prev_total != 0.0 && total > prev_total + 1e-6) monotone = false;
    prev_total = total;
  }
  std::printf("\nmaximum principle held: %s\n", max_principle ? "yes" : "NO");
  std::printf("heat decays monotonically (Dirichlet edges): %s\n", monotone ? "yes" : "NO");
  std::printf("validation vs serial reference: max rel err %.3g\n",
              prog.relative_error_vs_reference(1, 20));
  return 0;
}
