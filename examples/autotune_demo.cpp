// Auto-tuning walkthrough (paper §4.4 / §5.4): fit the linear-regression
// performance model from sampled configurations, search tile sizes and the
// MPI grid shape with simulated annealing, and report the improvement over
// the untuned configuration.
//
//   $ ./autotune_demo

#include <cstdio>

#include "comm/network_model.hpp"
#include "machine/cost_model.hpp"
#include "tune/tuner.hpp"
#include "workload/report.hpp"
#include "workload/stencils.hpp"

int main() {
  using namespace msc;

  const auto& info = workload::benchmark("3d13pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {1024, 256, 256});

  tune::TuneConfig cfg;
  cfg.processes = 32;
  cfg.global = {1024, 256, 256};
  cfg.timesteps = 100;
  cfg.train_samples = 48;
  cfg.sa_iterations = 8000;
  cfg.seed = 2024;

  std::printf("tuning %s on %lld Sunway CGs, global domain %lldx%lldx%lld...\n",
              info.name.c_str(), static_cast<long long>(cfg.processes),
              static_cast<long long>(cfg.global[0]), static_cast<long long>(cfg.global[1]),
              static_cast<long long>(cfg.global[2]));

  const auto result = tune::tune(prog->stencil(), machine::sunway_cg(),
                                 machine::profile_msc_sunway(), comm::sunway_network(), cfg);

  std::printf("\nperformance model fit: R^2 = %.4f over %lld sampled configurations\n",
              result.model_r2, static_cast<long long>(cfg.train_samples));
  std::printf("annealing: %lld iterations, converged at %lld\n",
              static_cast<long long>(cfg.sa_iterations),
              static_cast<long long>(result.converged_at));

  auto show = [](const char* label, const tune::TuneParams& p, double seconds) {
    std::printf("%s: mpi=(", label);
    for (std::size_t d = 0; d < p.mpi_dims.size(); ++d)
      std::printf("%s%d", d ? "," : "", p.mpi_dims[d]);
    std::printf(") tile=(%lld,%lld,%lld) -> %s per 100 steps\n",
                static_cast<long long>(p.tile[0]), static_cast<long long>(p.tile[1]),
                static_cast<long long>(p.tile[2]), workload::fmt_seconds(seconds).c_str());
  };
  show("untuned", result.initial, result.initial_seconds);
  show("tuned  ", result.best, result.best_seconds);
  std::printf("\nimprovement: %s  (paper reports 3.28x for its Fig. 11 case)\n",
              workload::fmt_ratio(result.speedup()).c_str());

  std::printf("\nbest-so-far trace (plot this for the paper's Fig. 11 shape):\n");
  for (const auto& p : result.trace)
    std::printf("  iter %7lld: %s\n", static_cast<long long>(p.iteration),
                workload::fmt_seconds(p.objective).c_str());
  return 0;
}
