// Weather-model advection — the paper's §5.6 outlook made real: kernels
// from WRF's advect_em / POP2's baroclinic modules "commonly require more
// than one input grid, along with their coefficient grids".
//
// This example advects a scalar tracer q through a spatially varying wind
// field (u, v) with first-order upwinding rewritten as a flux-form linear
// combination (usable without branches by taking u >= 0 in this demo's
// rotational field quadrant):
//
//   q[t] = q[t-1] - dt/h * ( u * (q - q_W) + v * (q - q_S) )[t-1]
//
// u and v are *auxiliary grids*: read-only coefficient fields attached to
// the stencil with Program::set_aux.  The multi-grid path runs on the
// reference executor (scheduled/codegen paths require single-grid affine
// stencils — documented in DESIGN.md).
//
//   $ ./advection_weather

#include <cmath>
#include <cstdio>

#include "dsl/program.hpp"
#include "workload/report.hpp"

int main() {
  using namespace msc;
  using dsl::ExprH;

  const std::int64_t N = 96;
  const double cfl = 0.4;

  dsl::Program prog("advect");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  dsl::GridRef Q = prog.def_tensor_2d_timewin("Q", 1, 1, ir::DataType::f64, N, N);
  dsl::GridRef U = prog.def_tensor_2d("U", 1, ir::DataType::f64, N, N);  // wind (i dir)
  dsl::GridRef V = prog.def_tensor_2d("V", 1, ir::DataType::f64, N, N);  // wind (j dir)

  // Upwind advection with grid-valued coefficients: note U(j,i) and V(j,i)
  // multiply *stencil* accesses of Q — a bilinear term no constant-
  // coefficient DSL can express.
  dsl::KernelHandle& K = prog.kernel(
      "upwind", {j, i},
      Q(j, i) - ExprH(cfl) * (U(j, i) * (Q(j, i) - Q(j, i - 1)) +
                              V(j, i) * (Q(j, i) - Q(j - 1, i))));
  (void)K;
  prog.def_stencil("advect", Q, K[prog.t() - 1]);

  // Wind: uniform diagonal flow, slightly faster near the domain center
  // (positive components keep the fixed upwind direction valid).
  prog.set_aux(U, [N](std::array<std::int64_t, 3> c) {
    const double r = std::hypot(static_cast<double>(c[0] - N / 2),
                                static_cast<double>(c[1] - N / 2));
    return 0.6 + 0.3 * std::exp(-r * r / (N * 4.0));
  });
  prog.set_aux(V, [N](std::array<std::int64_t, 3> c) {
    const double r = std::hypot(static_cast<double>(c[0] - N / 2),
                                static_cast<double>(c[1] - N / 2));
    return 0.4 + 0.2 * std::exp(-r * r / (N * 4.0));
  });

  // Tracer blob in the lower-left quadrant.
  const double bx = N / 4.0;
  prog.set_initial([bx](std::int64_t, std::array<std::int64_t, 3> c) {
    const double d2 = (c[0] - bx) * (c[0] - bx) + (c[1] - bx) * (c[1] - bx);
    return std::exp(-d2 / 18.0);
  });

  std::printf("step | blob centroid (j, i) | total tracer | peak\n");
  double prev_cj = bx, prev_ci = bx;
  bool moves_downwind = true;
  for (int t_end = 10; t_end <= 60; t_end += 10) {
    prog.run(t_end - 9, t_end);
    double total = 0.0, peak = 0.0, cj = 0.0, ci = 0.0;
    for (std::int64_t a = 0; a < N; ++a)
      for (std::int64_t b = 0; b < N; ++b) {
        const double v = prog.value_at(t_end, {a, b, 0});
        total += v;
        cj += v * static_cast<double>(a);
        ci += v * static_cast<double>(b);
        peak = std::max(peak, v);
      }
    cj /= total;
    ci /= total;
    std::printf("%4d |     (%5.1f, %5.1f)   | %10.4f | %.3f\n", t_end, cj, ci, total, peak);
    // The wind is positive in both components: the centroid must drift
    // toward increasing j and i.
    if (cj < prev_cj - 1e-9 || ci < prev_ci - 1e-9) moves_downwind = false;
    prev_cj = cj;
    prev_ci = ci;
  }
  std::printf("\ntracer drifts downwind (centroid monotone): %s\n",
              moves_downwind ? "yes" : "NO");
  std::printf("upwind scheme is diffusive but positivity-preserving: peak decays, no negative"
              " overshoot expected\n");
  return 0;
}
