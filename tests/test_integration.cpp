// End-to-end integration tests crossing module boundaries: DSL -> schedule
// -> executor -> Sunway simulator -> codegen on one program, the paper's
// §5.1 correctness criterion across precisions, and scalability-shape
// checks combining the cost and network models.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "comm/network_model.hpp"
#include "exec/executor.hpp"
#include "machine/cost_model.hpp"
#include "machine/roofline.hpp"
#include "sunway/cg_sim.hpp"
#include "tune/tuner.hpp"
#include "workload/stencils.hpp"

namespace msc {
namespace {

TEST(EndToEnd, OneProgramThroughEveryStage) {
  // Listing-1 equivalent: build, schedule, run on host, run on the Sunway
  // simulator, and AOT-generate all targets — all from one Program.
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  workload::apply_msc_schedule(*prog, info, "sunway", {4, 8, 8});

  // Host execution with §5.1 validation.
  prog->input(dsl::GridRef(prog->stencil().state()), 42);
  const auto run = prog->run(1, 10);
  EXPECT_EQ(run.stats.timesteps, 10);
  EXPECT_LT(prog->relative_error_vs_reference(1, 10), 1e-10);

  // Sunway functional simulation agrees with the reference.
  exec::GridStorage<double> sim(prog->stencil().state());
  exec::GridStorage<double> ref(prog->stencil().state());
  for (int s = 0; s < sim.slots(); ++s) {
    sim.fill_random(s, 1 + static_cast<std::uint64_t>(s));
    ref.fill_random(s, 1 + static_cast<std::uint64_t>(s));
  }
  const auto sw = sunway::run_cg_sim(prog->stencil(), prog->primary_schedule(), sim, 1, 5,
                                     exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  exec::run_reference(prog->stencil(), ref, 1, 5, exec::Boundary::ZeroHalo);
  EXPECT_LT(exec::max_relative_error(sim, sim.slot_for_time(5), ref, ref.slot_for_time(5)),
            1e-10);
  EXPECT_GT(sw.spm_utilization, 0.1);

  // All four codegen targets produce sources.
  for (const auto* target : {"c", "openmp", "sunway", "openacc"})
    EXPECT_FALSE(prog->compile_to_source_code(target).empty()) << target;
}

TEST(Correctness, PaperCriterionAcrossPrecisionsAndBenchmarks) {
  // §5.1: relative error < 1e-10 (fp64) and < 1e-5 (fp32) for all
  // generated codes vs the serial codes.
  for (const auto* name : {"2d9pt_box", "3d13pt_star"}) {
    const auto& info = workload::benchmark(name);
    const auto grid = info.ndim == 2 ? std::array<std::int64_t, 3>{40, 40, 0}
                                     : std::array<std::int64_t, 3>{16, 16, 16};
    {
      auto prog = workload::make_program(info, ir::DataType::f64, grid);
      workload::apply_msc_schedule(*prog, info, "matrix",
                                   info.ndim == 2 ? std::array<std::int64_t, 3>{8, 8, 0}
                                                  : std::array<std::int64_t, 3>{4, 4, 8});
      prog->input(dsl::GridRef(prog->stencil().state()), 3);
      EXPECT_LT(prog->relative_error_vs_reference(1, 6), 1e-10) << name << " fp64";
    }
    {
      auto prog = workload::make_program(info, ir::DataType::f32, grid);
      workload::apply_msc_schedule(*prog, info, "matrix",
                                   info.ndim == 2 ? std::array<std::int64_t, 3>{8, 8, 0}
                                                  : std::array<std::int64_t, 3>{4, 4, 8});
      prog->input(dsl::GridRef(prog->stencil().state()), 3);
      EXPECT_LT(prog->relative_error_vs_reference(1, 6), 1e-5) << name << " fp32";
    }
  }
}

TEST(ScalabilityShape, WeakScalingNearIdeal) {
  // Paper Fig. 10(b): fixed sub-grid per process, GFlops grows ~linearly.
  const auto& info = workload::benchmark("3d7pt_star");
  const auto m = machine::sunway_cg();
  const auto net = comm::sunway_network();
  auto prog = workload::make_program(info, ir::DataType::f64);
  workload::apply_msc_schedule(*prog, info, "sunway");

  double prev_gflops_per_rank = 0.0;
  for (int ranks : {8, 16, 32, 64}) {
    const auto kc = machine::estimate_subgrid(m, prog->stencil(), prog->primary_schedule(),
                                              machine::profile_msc_sunway(), {256, 256, 256},
                                              1, true);
    // Weak scaling: every rank keeps a 256^3 block; global = ranks x block.
    std::vector<int> dims = {ranks, 1, 1};
    comm::CartDecomp dec(dims, {256LL * ranks, 256, 256});
    const auto cc = comm::halo_exchange_cost(net, dec, 1, 8);
    const double step = kc.seconds_per_step + cc.seconds;
    const double gflops_per_rank =
        static_cast<double>(kc.flops_per_step) / step / 1e9;
    if (prev_gflops_per_rank > 0.0) {
      EXPECT_GT(gflops_per_rank, prev_gflops_per_rank * 0.9);  // <=10% efficiency loss/step
    }
    prev_gflops_per_rank = gflops_per_rank;
  }
}

TEST(ScalabilityShape, TwoDStrongScalingDegradesOnTianhe3) {
  // Paper Fig. 10(a): 2-D stencils deviate from ideal on Tianhe-3 as core
  // counts grow (halo exchange congestion), while 3-D stays near ideal.
  const auto net = comm::tianhe3_network();
  const auto m = machine::matrix_sn();

  auto efficiency = [&](const workload::BenchmarkInfo& info,
                        const std::vector<int>& dims_small,
                        const std::vector<int>& dims_large,
                        std::array<std::int64_t, 3> global) {
    auto prog = workload::make_program(info, ir::DataType::f64, global);
    workload::apply_msc_schedule(*prog, info, "matrix");
    auto time_at = [&](const std::vector<int>& dims) {
      std::vector<std::int64_t> g;
      for (int d = 0; d < info.ndim; ++d) g.push_back(global[static_cast<std::size_t>(d)]);
      comm::CartDecomp dec(dims, g);
      std::array<std::int64_t, 3> local{1, 1, 1};
      for (int d = 0; d < info.ndim; ++d)
        local[static_cast<std::size_t>(d)] = dec.local_extent(0, d);
      const auto kc = machine::estimate_subgrid(m, prog->stencil(), prog->primary_schedule(),
                                                machine::profile_msc_matrix(), local, 1, true);
      const auto cc = comm::halo_exchange_cost(net, dec, info.radius, 8);
      return kc.seconds_per_step + cc.seconds;
    };
    const double t_small = time_at(dims_small);
    const double t_large = time_at(dims_large);
    int p_small = 1, p_large = 1;
    for (int d : dims_small) p_small *= d;
    for (int d : dims_large) p_large *= d;
    // Parallel efficiency of the larger run relative to the smaller.
    return (t_small / t_large) / (static_cast<double>(p_large) / p_small);
  };

  // Paper Table 7 configurations: global domains sized so the per-rank
  // sub-grids match the listed 4096x4096 -> 2048x1024 (2-D) and
  // 256^3 -> 128^3 (3-D) progressions.
  const double eff2d = efficiency(workload::benchmark("2d9pt_star"), {8, 4}, {16, 16},
                                  {32768, 16384, 0});
  const double eff3d = efficiency(workload::benchmark("3d7pt_star"), {4, 4, 2}, {8, 8, 4},
                                  {1024, 1024, 512});
  EXPECT_LT(eff2d, eff3d);   // 2-D congests first
  EXPECT_GT(eff3d, 0.8);     // 3-D stays near ideal
  EXPECT_LT(eff2d, 0.8);     // the 2-D deviation is visible
}

TEST(Autotune, Fig11ShapeHolds) {
  // Paper Fig. 11: the trace decreases rapidly, converges, and the tuned
  // configuration beats the starting one by a multiple.
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {512, 128, 128});
  tune::TuneConfig cfg;
  cfg.processes = 16;
  cfg.global = {512, 128, 128};
  cfg.timesteps = 100;
  cfg.train_samples = 32;
  cfg.sa_iterations = 4000;
  cfg.seed = 19;
  const auto a = tune::tune(prog->stencil(), machine::sunway_cg(),
                            machine::profile_msc_sunway(), comm::sunway_network(), cfg);
  cfg.seed = 20;
  const auto b = tune::tune(prog->stencil(), machine::sunway_cg(),
                            machine::profile_msc_sunway(), comm::sunway_network(), cfg);
  // Two runs converge to similar quality (the paper's stability argument).
  EXPECT_GT(a.speedup(), 1.5);
  EXPECT_GT(b.speedup(), 1.5);
  EXPECT_NEAR(a.best_seconds / b.best_seconds, 1.0, 0.35);
}

TEST(Roofline, AchievedNeverExceedsAttainable) {
  const auto m = machine::sunway_cg();
  for (const auto& info : workload::all_benchmarks()) {
    auto prog = workload::make_program(info, ir::DataType::f64);
    workload::apply_msc_schedule(*prog, info, "sunway");
    const auto kc = machine::estimate(m, prog->stencil(), prog->primary_schedule(),
                                      machine::profile_msc_sunway(), 1, true);
    EXPECT_LE(kc.gflops, m.peak_gflops(true) * 1.0001) << info.name;
  }
}

}  // namespace
}  // namespace msc
