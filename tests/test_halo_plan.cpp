// Plan-exchanger tests (comm/exchange_plan.hpp): direction-list
// construction pins, persistent-workspace reuse, and the differential
// bit-identity matrix — the 26-direction plan exchange must reproduce the
// dimension-sequential exchanger's full padded ring (halos and corners
// included) bit for bit across periodic/non-periodic decompositions, odd
// extents, and self/coincident neighbors.  A differential failure engages a
// greedy shrinker that prints the minimal failing configuration.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "comm/decompose.hpp"
#include "comm/halo_exchange.hpp"
#include "comm/simmpi.hpp"
#include "exec/executor.hpp"
#include "exec/grid.hpp"
#include "workload/stencils.hpp"

namespace msc::comm {
namespace {

// ---- plan construction pins ---------------------------------------------

TEST(ExchangePlan, InteriorRankHasAllTwentySixDirections) {
  CartDecomp dec({3, 3, 3}, {12, 12, 12});
  const int center = dec.rank_of({1, 1, 1});
  ExchangePlan plan(dec, center, 1);
  EXPECT_EQ(plan.active_count(), 26);
  EXPECT_EQ(plan.diagonal_count(), 20);  // 12 edges + 8 corners
  // 4x4x4 local block, halo 1: faces 6*16, edges 12*4, corners 8*1.
  EXPECT_EQ(plan.total_elems(), 6 * 16 + 12 * 4 + 8 * 1);
}

TEST(ExchangePlan, TwoDInteriorHasEightDirections) {
  CartDecomp dec({3, 3}, {9, 9});
  ExchangePlan plan(dec, dec.rank_of({1, 1}), 1);
  EXPECT_EQ(plan.active_count(), 8);
  EXPECT_EQ(plan.diagonal_count(), 4);
}

TEST(ExchangePlan, CornerRankKeepsOnlyInwardDirections) {
  // Non-periodic 2x2x2: every rank sits in a global corner, so exactly the
  // 7 directions pointing at the opposite octant survive compaction.
  CartDecomp dec({2, 2, 2}, {8, 8, 8});
  for (int r = 0; r < dec.size(); ++r) {
    ExchangePlan plan(dec, r, 1);
    EXPECT_EQ(plan.active_count(), 7) << "rank " << r;
  }
}

TEST(ExchangePlan, PeriodicWrapRestoresFullEnvelope) {
  CartDecomp dec({2, 2}, {8, 8}, {true, true});
  for (int r = 0; r < dec.size(); ++r) {
    ExchangePlan plan(dec, r, 1);
    EXPECT_EQ(plan.active_count(), 8) << "rank " << r;
  }
}

TEST(ExchangePlan, TagsPairUpWithOppositeDirection) {
  CartDecomp dec({3, 3}, {9, 9});
  ExchangePlan plan(dec, dec.rank_of({1, 1}), 1);
  for (const auto& dir : plan.directions()) {
    EXPECT_EQ(dir.send_tag, kPlanTagBase + dir.index);
    EXPECT_EQ(dir.recv_tag, kPlanTagBase + opposite_direction_index(dir.off, plan.ndim()));
    EXPECT_GE(dir.send_tag, kPlanTagBase);  // disjoint from legacy [0, 2*ndim)
  }
}

TEST(PlanWorkspace, ArenasPersistAcrossExchanges) {
  // Persistent buffers are the point: after the first exchange sizes the
  // arenas, further exchanges must not reallocate them.
  auto tensor = ir::make_sp_tensor("B", ir::DataType::f64, {4, 4}, 1, 1);
  CartDecomp dec({2, 2}, {8, 8});
  SimWorld world(4);
  world.run([&](RankCtx& ctx) {
    exec::GridStorage<double> g(tensor);
    g.fill_halo(0, exec::Boundary::ZeroHalo);
    ExchangePlan plan(dec, ctx.rank(), g.halo());
    PlanWorkspace<double> ws;
    exchange_halo_plan(ctx, plan, ws, g, 0);
    const double* send_base = ws.send_arena.data();
    const double* recv_base = ws.recv_arena.data();
    for (int round = 0; round < 3; ++round) exchange_halo_plan(ctx, plan, ws, g, 0);
    EXPECT_EQ(ws.send_arena.data(), send_base) << "send arena reallocated";
    EXPECT_EQ(ws.recv_arena.data(), recv_base) << "recv arena reallocated";
  });
}

// ---- differential bit-identity matrix -----------------------------------

struct DiffCase {
  std::string bench;
  std::array<std::int64_t, 3> grid{0, 0, 0};
  std::vector<int> proc;
  bool periodic = false;
  std::int64_t steps = 3;

  std::string describe() const {
    std::string s = bench + " grid{";
    for (int d = 0; d < static_cast<int>(proc.size()); ++d)
      s += (d ? "," : "") + std::to_string(grid[static_cast<std::size_t>(d)]);
    s += "} proc{";
    for (int d = 0; d < static_cast<int>(proc.size()); ++d)
      s += (d ? "," : "") + std::to_string(proc[static_cast<std::size_t>(d)]);
    s += "}" + std::string(periodic ? " periodic" : "") +
         " steps=" + std::to_string(steps);
    return s;
  }
};

/// Runs the case distributed under `ex` and returns, per rank, the raw
/// bytes of every padded slot — the whole ring including halos/corners, so
/// any divergence anywhere is caught, not just the interior.
std::vector<std::vector<std::byte>> run_padded(const DiffCase& dc, Exchanger ex) {
  const auto& info = workload::benchmark(dc.bench);
  auto prog = workload::make_program(info, ir::DataType::f64, dc.grid);
  const auto& st = prog->stencil();
  const int ndim = st.state()->ndim();

  std::vector<std::int64_t> global_ext;
  for (int d = 0; d < ndim; ++d) global_ext.push_back(st.state()->extent(d));
  CartDecomp dec(dc.proc, global_ext,
                 std::vector<bool>(static_cast<std::size_t>(ndim), dc.periodic));

  auto seed_value = [](std::int64_t t, std::array<std::int64_t, 3> g) {
    return 0.001 * static_cast<double>((g[0] * 53 + g[1] * 17 + g[2] * 5 + t) % 127);
  };

  std::vector<std::vector<std::byte>> padded(static_cast<std::size_t>(dec.size()));
  SimWorld world(dec.size());
  world.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    std::vector<std::int64_t> local_ext;
    for (int d = 0; d < ndim; ++d) local_ext.push_back(dec.local_extent(r, d));
    auto local_tensor = ir::make_sp_tensor("B", ir::DataType::f64, local_ext,
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    std::array<std::int64_t, 3> off{0, 0, 0};
    for (int d = 0; d < ndim; ++d) off[static_cast<std::size_t>(d)] = dec.local_offset(r, d);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        std::array<std::int64_t, 3> g = c;
        for (int d = 0; d < ndim; ++d)
          g[static_cast<std::size_t>(d)] += off[static_cast<std::size_t>(d)];
        local.at(slot, c) = seed_value(-back, g);
      });
    }
    run_distributed(ctx, dec, st, local, 1, dc.steps, {}, ex);

    auto& out = padded[static_cast<std::size_t>(r)];
    const std::size_t slot_bytes =
        static_cast<std::size_t>(local.padded_points()) * sizeof(double);
    out.resize(static_cast<std::size_t>(local.slots()) * slot_bytes);
    for (int s = 0; s < local.slots(); ++s)
      std::memcpy(out.data() + static_cast<std::size_t>(s) * slot_bytes, local.slot_data(s),
                  slot_bytes);
  });
  return padded;
}

bool exchangers_agree(const DiffCase& dc) {
  const auto legacy = run_padded(dc, Exchanger::FaceSequential);
  const auto plan = run_padded(dc, Exchanger::Plan);
  if (legacy.size() != plan.size()) return false;
  for (std::size_t r = 0; r < legacy.size(); ++r) {
    if (legacy[r].size() != plan[r].size() ||
        std::memcmp(legacy[r].data(), plan[r].data(), legacy[r].size()) != 0)
      return false;
  }
  return true;
}

/// Greedy shrink: halve grid dims and cut steps while the case still
/// disagrees; the surviving minimum is the repro worth staring at.
DiffCase shrink_failure(DiffCase dc) {
  const auto& info = workload::benchmark(dc.bench);
  const std::int64_t radius = info.radius;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t d = 0; d < dc.proc.size(); ++d) {
      DiffCase cand = dc;
      // Keep every rank's sub-extent >= halo so the case stays legal.
      const std::int64_t floor_ext = radius * dc.proc[d];
      cand.grid[d] = std::max(floor_ext, dc.grid[d] / 2);
      if (cand.grid[d] < dc.grid[d] && !exchangers_agree(cand)) {
        dc = cand;
        shrunk = true;
      }
    }
    if (dc.steps > 1) {
      DiffCase cand = dc;
      cand.steps = dc.steps / 2;
      if (!exchangers_agree(cand)) {
        dc = cand;
        shrunk = true;
      }
    }
  }
  return dc;
}

void expect_bit_identical(const DiffCase& dc) {
  if (exchangers_agree(dc)) return;
  const DiffCase minimal = shrink_failure(dc);
  ADD_FAILURE() << "plan exchanger diverges from the sequential exchanger\n"
                << "  failing case: " << dc.describe() << "\n"
                << "  minimal repro: " << minimal.describe();
}

TEST(ExchangerDifferential, OddExtentsNonPeriodic2d) {
  expect_bit_identical({"2d9pt_box", {13, 11, 0}, {3, 2}, false, 4});
}

TEST(ExchangerDifferential, Periodic2dBox) {
  expect_bit_identical({"2d9pt_box", {12, 12, 0}, {2, 2}, true, 4});
}

TEST(ExchangerDifferential, WideHaloStar2d) {
  expect_bit_identical({"2d9pt_star", {16, 12, 0}, {2, 2}, false, 3});
}

TEST(ExchangerDifferential, SelfNeighborOneRankPeriodicDim) {
  // proc {2,1} periodic: dim 1 wraps onto the same rank — the plan's
  // self-message path against the legacy same-rank special case.
  expect_bit_identical({"2d9pt_box", {10, 7, 0}, {2, 1}, true, 3});
}

TEST(ExchangerDifferential, CoincidentNeighborsTwoRankPeriodicDim) {
  // 2-rank periodic dims: left and right neighbor coincide, so two
  // distinct messages flow between the same pair on different tags.
  expect_bit_identical({"2d9pt_box", {8, 8, 0}, {2, 2}, true, 3});
}

TEST(ExchangerDifferential, ThreeDimensionalOddExtents) {
  expect_bit_identical({"3d7pt_star", {10, 7, 9}, {2, 1, 2}, false, 3});
}

TEST(ExchangerDifferential, ThreeDimensionalPeriodic) {
  expect_bit_identical({"3d7pt_star", {8, 6, 8}, {2, 1, 2}, true, 3});
}

TEST(ExchangerDifferential, HaloEqualsExtentSlabs) {
  // Radius-2 star over 2-row slabs: the exchanged slab is the whole
  // sub-domain, every cell both sent and received each round.
  expect_bit_identical({"2d9pt_star", {4, 6, 0}, {2, 1}, false, 3});
}

}  // namespace
}  // namespace msc::comm
