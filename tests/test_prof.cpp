// Tests of the profiling layer (src/prof): counter registry semantics and
// thread-safety, the trace recorder's chrome://tracing serialization, the
// BenchReport schema — and the workload::Json parser those last two lean on.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "prof/bench_report.hpp"
#include "prof/counters.hpp"
#include "prof/log.hpp"
#include "prof/trace.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "workload/report.hpp"

namespace msc::prof {
namespace {

using workload::Json;

// ---- counters -----------------------------------------------------------

TEST(Counters, MonotonicAddAndValue) {
  CounterRegistry reg;
  auto& c = reg.counter("test.bytes");
  EXPECT_EQ(c.value(), 0);
  c.add(100);
  c.add(28);
  EXPECT_EQ(c.value(), 128);
  EXPECT_EQ(reg.value("test.bytes"), 128);
  EXPECT_EQ(reg.value("never.touched"), 0);
}

TEST(Counters, GaugeFoldsWithMax) {
  CounterRegistry reg;
  auto& g = reg.gauge("test.high_water");
  g.record_max(500);
  g.record_max(200);  // lower sample: no effect
  EXPECT_EQ(g.value(), 500);
  g.record_max(700);
  EXPECT_EQ(g.value(), 700);
}

TEST(Counters, KindMismatchThrows) {
  CounterRegistry reg;
  reg.counter("test.mono");
  reg.gauge("test.gauge");
  EXPECT_THROW(reg.gauge("test.mono"), Error);
  EXPECT_THROW(reg.counter("test.gauge"), Error);
  // Same-kind re-lookup returns the same counter.
  EXPECT_EQ(&reg.counter("test.mono"), &reg.counter("test.mono"));
}

TEST(Counters, KindMisuseOnIncrementThrows) {
  // add() on a gauge would silently turn a high-water mark into a sum (and
  // record_max() on a monotonic would drop increments), so both throw.
  CounterRegistry reg;
  auto& mono = reg.counter("test.mono2");
  auto& g = reg.gauge("test.gauge2");
  EXPECT_THROW(g.add(1), Error);
  EXPECT_THROW(mono.record_max(5), Error);
  // The misuse left the values untouched and the right verbs still work.
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(mono.value(), 0);
  mono.add(3);
  g.record_max(9);
  EXPECT_EQ(mono.value(), 3);
  EXPECT_EQ(g.value(), 9);
}

TEST(Counters, ResetZeroesButKeepsReferencesValid) {
  CounterRegistry reg;
  auto& c = reg.counter("test.count");
  c.add(42);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  c.add(7);  // the cached reference still works after reset
  EXPECT_EQ(reg.value("test.count"), 7);
}

TEST(Counters, SnapshotIsSortedByName) {
  CounterRegistry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("m.middle").record_max(2);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a.first");
  EXPECT_EQ(snap[1].first, "m.middle");
  EXPECT_EQ(snap[2].first, "z.last");
  EXPECT_EQ(snap[2].second, 3);
}

TEST(Counters, ConcurrentAddsFromThreadPoolLoseNothing) {
  CounterRegistry reg;
  auto& c = reg.counter("test.concurrent");
  auto& g = reg.gauge("test.concurrent_max");
  ThreadPool pool(4);
  pool.parallel_tasks(64, [&](std::int64_t idx) {
    for (int n = 0; n < 1000; ++n) c.add(1);
    g.record_max(idx);
  });
  EXPECT_EQ(c.value(), 64 * 1000);
  EXPECT_EQ(g.value(), 63);
}

TEST(Counters, GlobalShorthandsHitTheGlobalRegistry) {
  global_counters().reset();
  counter("test.global").add(5);
  gauge("test.global_gauge").record_max(9);
  EXPECT_EQ(global_counters().value("test.global"), 5);
  EXPECT_EQ(global_counters().value("test.global_gauge"), 9);
  global_counters().reset();
}

// ---- trace recorder -----------------------------------------------------

TEST(Trace, DisabledScopeRecordsNothing) {
  auto& tr = global_trace();
  tr.clear();
  tr.set_enabled(false);
  { TraceScope scope("invisible", "test"); }
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Trace, ScopeRecordsCompleteEventWithArgs) {
  auto& tr = global_trace();
  tr.clear();
  tr.set_enabled(true);
  {
    TraceScope scope("step", "test");
    scope.arg("t", 3.0);
  }
  tr.instant("marker", "test", {{"n", 1.0}});
  tr.set_enabled(false);

  const auto events = tr.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "step");
  EXPECT_EQ(events[0].cat, "test");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GE(events[0].dur_us, 0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "t");
  EXPECT_EQ(events[1].phase, 'i');
  tr.clear();
}

TEST(Trace, ChromeJsonIsWellFormed) {
  auto& tr = global_trace();
  tr.clear();
  tr.set_enabled(true);
  { TraceScope scope("outer \"quoted\"", "cat"); }
  tr.instant("point", "cat");
  tr.set_enabled(false);

  // The dump must parse back: that is exactly what chrome://tracing does.
  const Json doc = Json::parse(tr.chrome_json().dump());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->elements().size(), 2u);

  const Json& complete = events->elements()[0];
  EXPECT_EQ(complete.find("name")->as_string(), "outer \"quoted\"");
  EXPECT_EQ(complete.find("ph")->as_string(), "X");
  EXPECT_GE(complete.find("ts")->as_integer(), 0);
  EXPECT_GE(complete.find("dur")->as_integer(), 0);
  EXPECT_EQ(complete.find("pid")->as_integer(), 0);

  const Json& instant = events->elements()[1];
  EXPECT_EQ(instant.find("ph")->as_string(), "i");
  ASSERT_NE(instant.find("s"), nullptr);  // instant scope marker
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  tr.clear();
}

TEST(Trace, ThreadIdsAreSmallAndStable) {
  auto& tr = global_trace();
  tr.clear();
  tr.set_enabled(true);
  ThreadPool pool(3);
  pool.parallel_tasks(12, [&](std::int64_t) { TraceScope scope("work", "test"); });
  tr.set_enabled(false);
  const auto events = tr.events();
  ASSERT_EQ(events.size(), 12u);
  for (const auto& e : events) {
    EXPECT_GE(e.tid, 0);
    EXPECT_LT(e.tid, 3);  // first-seen small integers, one per worker
  }
  tr.clear();
}

// ---- bench report -------------------------------------------------------

TEST(BenchReportTest, JsonSchemaRoundTrips) {
  global_counters().reset();
  counter("test.report.bytes").add(4096);
  gauge("test.report.peak").record_max(1 << 20);

  BenchReport report("unit", "3d7pt_star");
  report.set_config("grid", "32x32x32");
  report.set_config("steps", 4LL);
  report.capture_global_counters();
  Json row = Json::object();
  row["seconds"] = Json::number(0.125);
  row["label"] = Json::string("first");
  report.add_result(std::move(row));
  report.set_wall_seconds(1.5);

  const Json doc = Json::parse(report.to_json().dump());
  EXPECT_EQ(doc.find("schema")->as_string(), "msc-bench-v1");
  EXPECT_EQ(doc.find("name")->as_string(), "unit");
  EXPECT_EQ(doc.find("workload")->as_string(), "3d7pt_star");
  EXPECT_EQ(doc.find("config")->find("grid")->as_string(), "32x32x32");
  EXPECT_EQ(doc.find("config")->find("steps")->as_string(), "4");
  EXPECT_EQ(doc.find("counters")->find("test.report.bytes")->as_integer(), 4096);
  EXPECT_EQ(doc.find("counters")->find("test.report.peak")->as_integer(), 1 << 20);
  const Json* results = doc.find("results");
  ASSERT_TRUE(results->is_array());
  ASSERT_EQ(results->elements().size(), 1u);
  EXPECT_DOUBLE_EQ(results->elements()[0].find("seconds")->as_number(), 0.125);
  EXPECT_DOUBLE_EQ(doc.find("wall_seconds")->as_number(), 1.5);
  global_counters().reset();
}

TEST(BenchReportTest, DirHonorsEnvironment) {
  // Unset, bench_report_dir falls back to the compiled-in repo root (so
  // reports and the bench-history ledger land somewhere stable).
  const char* old = std::getenv("MSC_BENCH_DIR");
  const std::string saved = old ? old : "";
  ::unsetenv("MSC_BENCH_DIR");
#ifdef MSC_BENCH_DEFAULT_DIR
  EXPECT_EQ(bench_report_dir(), MSC_BENCH_DEFAULT_DIR);
#else
  EXPECT_EQ(bench_report_dir(), ".");
#endif
  ::setenv("MSC_BENCH_DIR", "/tmp/msc_bench_test", 1);
  EXPECT_EQ(bench_report_dir(), "/tmp/msc_bench_test");
  if (old)
    ::setenv("MSC_BENCH_DIR", saved.c_str(), 1);
  else
    ::unsetenv("MSC_BENCH_DIR");
}

// ---- structured logger --------------------------------------------------

/// Captures finished log lines for the duration of a test.
class LogCapture {
 public:
  explicit LogCapture(LogLevel level) {
    global_log().set_capture([this](const std::string& line) { lines_.push_back(line); });
    global_log().set_level(level);
  }
  ~LogCapture() {
    global_log().set_level(LogLevel::Off);
    global_log().set_capture(nullptr);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(Log, LevelNamesRoundTrip) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("3"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::Off);
  EXPECT_STREQ(log_level_name(LogLevel::Warn), "warn");
  EXPECT_STREQ(log_level_name(LogLevel::Off), "off");
}

TEST(Log, EventsBelowTheLevelAreDropped) {
  LogCapture cap(LogLevel::Info);
  LogEvent(LogLevel::Error, "test", "kept-error");
  LogEvent(LogLevel::Info, "test", "kept-info");
  LogEvent(LogLevel::Debug, "test", "dropped");
  LogEvent(LogLevel::Trace, "test", "dropped too");
  ASSERT_EQ(cap.lines().size(), 2u);
  EXPECT_NE(cap.lines()[0].find("kept-error"), std::string::npos);
  EXPECT_NE(cap.lines()[1].find("kept-info"), std::string::npos);
}

TEST(Log, LinesAreSingleLineParseableJson) {
  LogCapture cap(LogLevel::Debug);
  LogEvent(LogLevel::Debug, "tune.sample", "candidate \"quoted\"")
      .num("predicted", 0.25)
      .integer("sample", 7)
      .str("action", "accept")
      .boolean("improved", true);
  ASSERT_EQ(cap.lines().size(), 1u);
  const std::string& line = cap.lines()[0];
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const Json doc = Json::parse(line);
  EXPECT_EQ(doc.find("lvl")->as_string(), "debug");
  EXPECT_EQ(doc.find("comp")->as_string(), "tune.sample");
  EXPECT_EQ(doc.find("msg")->as_string(), "candidate \"quoted\"");
  EXPECT_GE(doc.find("seq")->as_integer(), 0);
  EXPECT_DOUBLE_EQ(doc.find("predicted")->as_number(), 0.25);
  EXPECT_EQ(doc.find("sample")->as_integer(), 7);
  EXPECT_EQ(doc.find("action")->as_string(), "accept");
  EXPECT_TRUE(doc.find("improved")->as_bool());
}

TEST(Log, SequenceNumbersIncreaseAcrossEvents) {
  LogCapture cap(LogLevel::Info);
  LogEvent(LogLevel::Info, "test", "a");
  LogEvent(LogLevel::Info, "test", "b");
  ASSERT_EQ(cap.lines().size(), 2u);
  const auto s0 = Json::parse(cap.lines()[0]).find("seq")->as_integer();
  const auto s1 = Json::parse(cap.lines()[1]).find("seq")->as_integer();
  EXPECT_LT(s0, s1);
}

TEST(Log, ConcurrentWritersProduceWholeLines) {
  LogCapture cap(LogLevel::Info);
  ThreadPool pool(4);
  pool.parallel_tasks(64, [&](std::int64_t idx) {
    LogEvent(LogLevel::Info, "test.mt", "worker").integer("task", idx);
  });
  ASSERT_EQ(cap.lines().size(), 64u);
  for (const auto& line : cap.lines()) {
    const Json doc = Json::parse(line);  // each captured line is intact JSON
    EXPECT_EQ(doc.find("comp")->as_string(), "test.mt");
  }
}

// ---- Json parser --------------------------------------------------------

TEST(JsonParse, DumpCompactIsSingleLineAndRoundTrips) {
  Json j = Json::object();
  j["name"] = Json::string("x");
  Json arr = Json::array();
  arr.push_back(Json::integer(1));
  arr.push_back(Json::number(2.5));
  arr.push_back(Json::boolean(false));
  j["vals"] = std::move(arr);
  j["nested"] = Json::object();
  j["nested"]["deep"] = Json::string("line\nbreak");
  const std::string compact = j.dump_compact();
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  const Json back = Json::parse(compact);
  EXPECT_EQ(back.find("name")->as_string(), "x");
  EXPECT_EQ(back.find("vals")->elements().size(), 3u);
  EXPECT_DOUBLE_EQ(back.find("vals")->elements()[1].as_number(), 2.5);
  EXPECT_EQ(back.find("nested")->find("deep")->as_string(), "line\nbreak");
}


TEST(JsonParse, ScalarsAndStructure) {
  const Json doc = Json::parse(
      R"({"a": 1, "b": -2.5, "c": true, "d": false, "e": null,
          "f": "text", "g": [1, 2, 3], "h": {"nested": "yes"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("a")->as_integer(), 1);
  EXPECT_DOUBLE_EQ(doc.find("b")->as_number(), -2.5);
  EXPECT_TRUE(doc.find("c")->as_bool());
  EXPECT_FALSE(doc.find("d")->as_bool());
  EXPECT_TRUE(doc.find("e")->is_null());
  EXPECT_EQ(doc.find("f")->as_string(), "text");
  ASSERT_EQ(doc.find("g")->elements().size(), 3u);
  EXPECT_EQ(doc.find("g")->elements()[2].as_integer(), 3);
  EXPECT_EQ(doc.find("h")->find("nested")->as_string(), "yes");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, EscapesRoundTripThroughDump) {
  Json j = Json::object();
  j["tricky"] = Json::string("line\none \"two\"\ttab\\slash \x1f");
  j["unicode"] = Json::string("\xE2\x82\xAC euro");  // UTF-8 passthrough
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.find("tricky")->as_string(), j.find("tricky")->as_string());
  EXPECT_EQ(back.find("unicode")->as_string(), j.find("unicode")->as_string());
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  // Escapes spelled with explicit backslashes so the parser, not the C++
  // compiler, decodes them.
  const std::string text =
      "{\"euro\": \"\\u20AC\", \"a\": \"\\u0041\", \"nul\": \"\\u001f\"}";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.find("euro")->as_string(), "\xE2\x82\xAC");
  EXPECT_EQ(doc.find("a")->as_string(), "A");
  EXPECT_EQ(doc.find("nul")->as_string(), "\x1f");
}

TEST(JsonParse, IntegersStayExact) {
  const Json doc = Json::parse(R"({"big": 9007199254740993, "neg": -42})");
  EXPECT_EQ(doc.find("big")->as_integer(), 9007199254740993LL);  // > 2^53
  EXPECT_EQ(doc.find("neg")->as_integer(), -42);
  EXPECT_TRUE(doc.find("big")->is_number());
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1, 2,]"), Error);
  EXPECT_THROW(Json::parse(R"({"a": 1} trailing)"), Error);
  EXPECT_THROW(Json::parse(R"({"unterminated)"), Error);
  EXPECT_THROW(Json::parse("{'single': 1}"), Error);
  EXPECT_THROW(Json::parse("nulL"), Error);
}

}  // namespace
}  // namespace msc::prof
