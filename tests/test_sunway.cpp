// Sunway substrate tests: SPM allocator budget enforcement, DMA accounting,
// and the functional CG simulator's numerics against the serial reference.

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/executor.hpp"
#include "sunway/cg_sim.hpp"
#include "sunway/dma.hpp"
#include "sunway/spm.hpp"
#include "sunway/streaming.hpp"
#include "support/error.hpp"
#include "workload/stencils.hpp"

namespace msc::sunway {
namespace {

TEST(Spm, BudgetEnforced) {
  SpmAllocator spm(1024);
  spm.allocate("a", 512);
  spm.allocate("b", 512);
  EXPECT_EQ(spm.available(), 0);
  EXPECT_THROW(spm.allocate("c", 1), Error);
  spm.release("a");
  EXPECT_NO_THROW(spm.allocate("c", 256));
  EXPECT_NEAR(spm.utilization(), 768.0 / 1024.0, 1e-12);
}

TEST(Spm, RejectsDuplicatesAndUnknownRelease) {
  SpmAllocator spm(1024);
  spm.allocate("a", 100);
  EXPECT_THROW(spm.allocate("a", 100), Error);
  EXPECT_THROW(spm.release("ghost"), Error);
  // Charged sizes are rounded up to the DMA alignment quantum.
  EXPECT_EQ(spm.buffer_size("a"), spm_align_up(100));
  EXPECT_THROW(spm.buffer_size("ghost"), Error);
}

TEST(Spm, AlignUpQuantum) {
  EXPECT_EQ(spm_align_up(0), 0);
  EXPECT_EQ(spm_align_up(1), kSpmAlign);
  EXPECT_EQ(spm_align_up(kSpmAlign), kSpmAlign);
  EXPECT_EQ(spm_align_up(kSpmAlign + 1), 2 * kSpmAlign);
  EXPECT_EQ(spm_align_up(100), 128);
}

TEST(Spm, BudgetChargesAlignedBytes) {
  // Regression: the budget check used to charge the raw byte count while
  // cg_sim_spm_bytes modelled padded buffers, so a tile could "fit" by one
  // accounting and overflow by the other.  Both now charge aligned sizes.
  SpmAllocator spm(4 * kSpmAlign);
  spm.allocate("odd", kSpmAlign + 1);  // charges 2 quanta, not kSpmAlign+1
  EXPECT_EQ(spm.used(), 2 * kSpmAlign);
  EXPECT_EQ(spm.available(), 2 * kSpmAlign);
  spm.allocate("rest", 2 * kSpmAlign);  // exact fill after padding succeeds
  EXPECT_EQ(spm.available(), 0);
  EXPECT_THROW(spm.allocate("over", 1), Error);  // one more byte overflows
  EXPECT_EQ(spm.high_water(), 4 * kSpmAlign);
}

TEST(Spm, HighWaterTracksPeakNotCurrent) {
  SpmAllocator spm(1024);
  spm.allocate("a", 512);
  spm.allocate("b", 256);
  spm.release("a");
  EXPECT_EQ(spm.used(), 256);
  EXPECT_EQ(spm.high_water(), 768);
}

TEST(Spm, FitQueryAgreesWithAllocatorAtBoundary) {
  // cg_sim_fits_spm and the allocator must agree exactly at the budget
  // boundary: a schedule that the fit query accepts must also allocate.
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {32, 32, 32});
  workload::apply_msc_schedule(*prog, info, "sunway", {2, 8, 16});
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();
  const std::int64_t need = cg_sim_spm_bytes(st, sched, 8);

  SpmAllocator exact(need);
  const std::int64_t r = st.max_radius();
  std::int64_t staged = 1, interior = 1;
  for (int d = 0; d < 3; ++d) {
    const std::int64_t tile = std::min(sched.tile_extent(d), st.state()->extent(d));
    staged *= tile + 2 * r;
    interior *= tile;
  }
  EXPECT_NO_THROW(exact.allocate("in", staged * 8));
  EXPECT_NO_THROW(exact.allocate("out", interior * 8));
  EXPECT_EQ(exact.available(), 0);

  SpmAllocator tight(need - 1);
  EXPECT_NO_THROW(tight.allocate("in", staged * 8));
  EXPECT_THROW(tight.allocate("out", interior * 8), Error);
}

TEST(Dma, AccountsLatencyAndBandwidth) {
  DmaConfig cfg;
  cfg.latency_us = 2.0;
  cfg.bandwidth_gbs = 1.0;  // 1 GB/s => 1 us per KB
  DmaEngine dma(cfg);
  std::vector<std::byte> src(4096), dst(4096);
  dma.get(dst.data(), src.data(), 4096, 1024);  // 4 chunks
  EXPECT_EQ(dma.stats().transactions, 4);
  EXPECT_EQ(dma.stats().bytes, 4096);
  // 4 * 2us latency + 4096 B / 1 GB/s ~= 8us + 4.096us.
  EXPECT_NEAR(dma.stats().seconds, 8e-6 + 4.096e-6, 1e-9);
}

TEST(Dma, SmallChunksLoseEfficiency) {
  DmaConfig cfg;
  cfg.latency_us = 0.0;
  cfg.bandwidth_gbs = 1.0;
  cfg.min_efficient_bytes = 256;
  DmaEngine coalesced(cfg), strided(cfg);
  std::vector<std::byte> a(4096), b(4096);
  coalesced.get(a.data(), b.data(), 4096, 4096);
  strided.get(a.data(), b.data(), 4096, 64);  // 64-B chunks: 4x slower
  EXPECT_GT(strided.stats().seconds, coalesced.stats().seconds * 3.9);
}

TEST(Dma, MovesDataCorrectly) {
  DmaEngine dma;
  std::vector<std::int32_t> src = {1, 2, 3, 4}, dst(4, 0);
  dma.get(dst.data(), src.data(), 16, 16);
  EXPECT_EQ(dst, src);
}

/// CG simulation vs serial reference on a small benchmark-shaped stencil.
class CgSimFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(CgSimFixture, NumericsMatchReference) {
  const auto& info = workload::benchmark(GetParam());
  const std::array<std::int64_t, 3> grid =
      info.ndim == 2 ? std::array<std::int64_t, 3>{40, 40, 0}
                     : std::array<std::int64_t, 3>{20, 20, 20};
  auto prog = workload::make_program(info, ir::DataType::f64, grid);
  // Small tiles so several tiles per CPE actually occur.
  workload::apply_msc_schedule(*prog, info, "sunway",
                               info.ndim == 2 ? std::array<std::int64_t, 3>{8, 16, 0}
                                              : std::array<std::int64_t, 3>{4, 8, 10});

  auto tensor = prog->stencil().state();
  exec::GridStorage<double> sim(tensor), ref(tensor);
  for (int s = 0; s < sim.slots(); ++s) {
    sim.fill_random(s, 31 + static_cast<std::uint64_t>(s));
    ref.fill_random(s, 31 + static_cast<std::uint64_t>(s));
  }
  const auto result = run_cg_sim(prog->stencil(), prog->primary_schedule(), sim, 1, 4,
                                 exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  exec::run_reference(prog->stencil(), ref, 1, 4, exec::Boundary::ZeroHalo);

  // The staged pipeline accumulates per time-offset group, so ordering can
  // differ from the reference's flat term order — allow fp64 roundoff of
  // the paper's §5.1 magnitude.
  EXPECT_LT(exec::max_relative_error(sim, sim.slot_for_time(4), ref, ref.slot_for_time(4)),
            1e-10)
      << info.name;
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.dma.bytes, 0);
  EXPECT_GT(result.tiles, 1);
  EXPECT_EQ(result.timesteps, 4);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, CgSimFixture,
                         ::testing::Values("2d9pt_star", "2d9pt_box", "3d7pt_star",
                                           "3d13pt_star"));

TEST(CgSim, OversizedTileRejectedBySpmBudget) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {64, 64, 64});
  // A 64x64x64 tile (the whole grid) cannot fit the 64 KB SPM.
  workload::apply_msc_schedule(*prog, info, "sunway", {64, 64, 64});
  auto tensor = prog->stencil().state();
  exec::GridStorage<double> g(tensor);
  EXPECT_THROW(run_cg_sim(prog->stencil(), prog->primary_schedule(), g, 1, 1,
                          exec::Boundary::ZeroHalo, {}, machine::sunway_cg()),
               Error);
}

TEST(CgSim, SpmUtilizationMatchesScheduleQuery) {
  const auto& info = workload::benchmark("3d13pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {32, 32, 32});
  workload::apply_msc_schedule(*prog, info, "sunway", {2, 8, 16});
  auto tensor = prog->stencil().state();
  exec::GridStorage<double> g(tensor);
  for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 3);
  const auto result = run_cg_sim(prog->stencil(), prog->primary_schedule(), g, 1, 1,
                                 exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  // (2+4)(8+4)(16+4) staged + 2*8*16 out, both fp64.
  const double expected =
      static_cast<double>((6 * 12 * 20 + 2 * 8 * 16) * 8) / (64.0 * 1024.0);
  EXPECT_NEAR(result.spm_utilization, expected, 1e-12);
}

TEST(CgSim, ReuseFactorGrowsWithTileVolume) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog_small = workload::make_program(info, ir::DataType::f64, {32, 32, 32});
  workload::apply_msc_schedule(*prog_small, info, "sunway", {1, 1, 32});
  auto prog_big = workload::make_program(info, ir::DataType::f64, {32, 32, 32});
  workload::apply_msc_schedule(*prog_big, info, "sunway", {4, 8, 32});

  exec::GridStorage<double> gs(prog_small->stencil().state()), gb(prog_big->stencil().state());
  for (int s = 0; s < gs.slots(); ++s) {
    gs.fill_random(s, 5);
    gb.fill_random(s, 5);
  }
  const auto rs = run_cg_sim(prog_small->stencil(), prog_small->primary_schedule(), gs, 1, 1,
                             exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  const auto rb = run_cg_sim(prog_big->stencil(), prog_big->primary_schedule(), gb, 1, 1,
                             exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  EXPECT_GT(rb.reuse_factor, rs.reuse_factor);
  EXPECT_LT(rb.dma.bytes, rs.dma.bytes);  // bigger tiles => less halo re-fetch
}

class StreamingFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamingFixture, NumericsMatchReference) {
  const auto& info = workload::benchmark(GetParam());
  auto prog = workload::make_program(info, ir::DataType::f64, {18, 20, 22});
  workload::apply_msc_schedule(*prog, info, "sunway", {4, 8, 10});
  exec::GridStorage<double> stream(prog->stencil().state()), ref(prog->stencil().state());
  for (int s = 0; s < stream.slots(); ++s) {
    stream.fill_random(s, 17 + static_cast<std::uint64_t>(s));
    ref.fill_random(s, 17 + static_cast<std::uint64_t>(s));
  }
  const auto result =
      run_cg_sim_streamed(prog->stencil(), prog->primary_schedule(), stream, 1, 4,
                          exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  exec::run_reference(prog->stencil(), ref, 1, 4, exec::Boundary::ZeroHalo);
  EXPECT_LT(
      exec::max_relative_error(stream, stream.slot_for_time(4), ref, ref.slot_for_time(4)),
      1e-10)
      << GetParam();
  EXPECT_GT(result.dma.bytes, 0);
  EXPECT_EQ(result.timesteps, 4);
}

INSTANTIATE_TEST_SUITE_P(Stencils, StreamingFixture,
                         ::testing::Values("3d7pt_star", "3d13pt_star", "3d25pt_star"));

TEST(Streaming, EliminatesKHaloRestagingVsThinTiles) {
  // A 3-D tile with k-extent 1 re-stages 2r k-halo planes per output
  // plane; the streaming pipeline loads each plane exactly once.
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  workload::apply_msc_schedule(*prog, info, "sunway", {1, 8, 16});

  exec::GridStorage<double> a(prog->stencil().state()), b(prog->stencil().state());
  for (int s = 0; s < a.slots(); ++s) {
    a.fill_random(s, 2);
    b.fill_random(s, 2);
  }
  const auto tiled = run_cg_sim(prog->stencil(), prog->primary_schedule(), a, 1, 2,
                                exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  const auto streamed = run_cg_sim_streamed(prog->stencil(), prog->primary_schedule(), b, 1, 2,
                                            exec::Boundary::ZeroHalo, {}, machine::sunway_cg());
  EXPECT_LT(streamed.dma.bytes, tiled.dma.bytes);
  EXPECT_GT(streamed.reuse_factor, tiled.reuse_factor);
}

TEST(Streaming, RejectsNon3dAndOversizedPlanes) {
  const auto& info2d = workload::benchmark("2d9pt_star");
  auto p2 = workload::make_program(info2d, ir::DataType::f64, {16, 16, 0});
  exec::GridStorage<double> g2(p2->stencil().state());
  EXPECT_THROW(run_cg_sim_streamed(p2->stencil(), p2->primary_schedule(), g2, 1, 1,
                                   exec::Boundary::ZeroHalo, {}, machine::sunway_cg()),
               Error);

  const auto& info = workload::benchmark("3d7pt_star");
  auto p3 = workload::make_program(info, ir::DataType::f64, {64, 64, 64});
  workload::apply_msc_schedule(*p3, info, "sunway", {1, 64, 64});  // whole-plane tiles x W x depth
  exec::GridStorage<double> g3(p3->stencil().state());
  EXPECT_THROW(run_cg_sim_streamed(p3->stencil(), p3->primary_schedule(), g3, 1, 1,
                                   exec::Boundary::ZeroHalo, {}, machine::sunway_cg()),
               Error);
}

TEST(CgSim, RequiresScratchpadMachine) {
  const auto& info = workload::benchmark("2d9pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 0});
  exec::GridStorage<double> g(prog->stencil().state());
  EXPECT_THROW(run_cg_sim(prog->stencil(), prog->primary_schedule(), g, 1, 1,
                          exec::Boundary::ZeroHalo, {}, machine::matrix_sn()),
               Error);
}

}  // namespace
}  // namespace msc::sunway
