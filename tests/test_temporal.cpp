// Temporal-tiling executor tests: equivalence with the plain executor for
// every (tile, time_tile) combination, trapezoid redundancy accounting,
// and traffic reduction.

#include <gtest/gtest.h>

#include "exec/temporal.hpp"
#include "workload/stencils.hpp"

namespace msc::exec {
namespace {

struct Bench {
  std::unique_ptr<dsl::Program> prog;
  ir::Tensor grid;

  explicit Bench(const char* bench, std::array<std::int64_t, 3> extent) {
    const auto& info = workload::benchmark(bench);
    prog = workload::make_program(info, ir::DataType::f64, extent);
    grid = prog->stencil().state();
  }
};

class TemporalEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, int, std::int64_t>> {};

TEST_P(TemporalEquivalence, MatchesPlainExecutionBitExact) {
  const auto [bench, time_tile, tile_edge] = GetParam();
  Bench s(bench, std::string(bench).substr(0, 2) == "2d"
                     ? std::array<std::int64_t, 3>{30, 30, 0}
                     : std::array<std::int64_t, 3>{14, 14, 14});

  GridStorage<double> tiled(s.grid), plain(s.grid);
  for (int slot = 0; slot < tiled.slots(); ++slot) {
    tiled.fill_random(slot, 91 + static_cast<std::uint64_t>(slot));
    plain.fill_random(slot, 91 + static_cast<std::uint64_t>(slot));
  }

  run_temporal_tiled(s.prog->stencil(), tiled, {tile_edge, tile_edge, tile_edge}, time_tile, 1,
                     7);
  run_reference(s.prog->stencil(), plain, 1, 7, Boundary::ZeroHalo);

  // Compare every live window slot, not just the last step.
  for (std::int64_t t = 7; t > 7 - s.prog->stencil().time_window(); --t) {
    EXPECT_EQ(max_relative_error(tiled, tiled.slot_for_time(t), plain, plain.slot_for_time(t)),
              0.0)
        << bench << " time_tile=" << time_tile << " tile=" << tile_edge << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TemporalEquivalence,
    ::testing::Combine(::testing::Values("2d9pt_star", "2d9pt_box", "3d7pt_star",
                                         "3d13pt_star"),
                       ::testing::Values(1, 2, 3, 5),       // time tile depth
                       ::testing::Values<std::int64_t>(5, 8, 30)));  // tile edge (30 > grid: full)

TEST(Temporal, TimeTileOneHasNoRedundancy) {
  Bench s("2d9pt_box", {24, 24, 0});
  GridStorage<double> g(s.grid);
  for (int slot = 0; slot < g.slots(); ++slot) g.fill_random(slot, 1);
  const auto stats = run_temporal_tiled(s.prog->stencil(), g, {8, 8, 1}, 1, 1, 4);
  EXPECT_DOUBLE_EQ(stats.redundancy(), 1.0);
  EXPECT_EQ(stats.blocks, 4);
  EXPECT_EQ(stats.interior_points, 4 * 24 * 24);
}

TEST(Temporal, RedundancyGrowsWithDepth) {
  Bench s("2d9pt_box", {32, 32, 0});
  auto redundancy_at = [&](int depth) {
    GridStorage<double> g(s.grid);
    for (int slot = 0; slot < g.slots(); ++slot) g.fill_random(slot, 1);
    return run_temporal_tiled(s.prog->stencil(), g, {8, 8, 1}, depth, 1, 6).redundancy();
  };
  const double r1 = redundancy_at(1), r2 = redundancy_at(2), r3 = redundancy_at(3);
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  EXPECT_GT(r3, 1.0);
}

TEST(Temporal, StagedTrafficPerStepDropsWithDepth) {
  // The whole point of temporal tiling: staged elements per computed step
  // shrink as the depth grows (fewer window reloads per step).
  Bench s("3d7pt_star", {16, 16, 16});
  auto staged_per_step = [&](int depth) {
    GridStorage<double> g(s.grid);
    for (int slot = 0; slot < g.slots(); ++slot) g.fill_random(slot, 1);
    const auto st = run_temporal_tiled(s.prog->stencil(), g, {8, 8, 8}, depth, 1, 6);
    return static_cast<double>(st.staged_elems) / 6.0;
  };
  EXPECT_LT(staged_per_step(3), staged_per_step(1));
}

TEST(Temporal, RejectsBadArguments) {
  Bench s("2d9pt_box", {16, 16, 0});
  GridStorage<double> g(s.grid);
  EXPECT_THROW(run_temporal_tiled(s.prog->stencil(), g, {8, 8, 1}, 0, 1, 2), Error);
  EXPECT_THROW(run_temporal_tiled(s.prog->stencil(), g, {8, 8, 1}, 2, 3, 2), Error);
}

TEST(Temporal, PartialLastBlockHandled) {
  // 7 steps with depth 3 -> blocks of 3, 3, 1.
  Bench s("2d9pt_star", {20, 20, 0});
  GridStorage<double> tiled(s.grid), plain(s.grid);
  for (int slot = 0; slot < tiled.slots(); ++slot) {
    tiled.fill_random(slot, 4 + static_cast<std::uint64_t>(slot));
    plain.fill_random(slot, 4 + static_cast<std::uint64_t>(slot));
  }
  const auto stats = run_temporal_tiled(s.prog->stencil(), tiled, {8, 8, 1}, 3, 1, 7);
  EXPECT_EQ(stats.blocks, 3);
  run_reference(s.prog->stencil(), plain, 1, 7, Boundary::ZeroHalo);
  EXPECT_EQ(max_relative_error(tiled, tiled.slot_for_time(7), plain, plain.slot_for_time(7)),
            0.0);
}

}  // namespace
}  // namespace msc::exec
