// Property-based tests (parameterized sweeps): for randomly drawn stencil
// shapes, tile sizes and loop orders, the scheduled executor must agree
// with the serial reference; for any decomposition, the distributed run
// must agree with the single-node run; the sliding window must preserve
// every retained timestep.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/halo_exchange.hpp"
#include "dsl/program.hpp"
#include "exec/executor.hpp"
#include "support/rng.hpp"

namespace msc {
namespace {

/// A randomly generated affine 2-D stencil program with 2 time deps.
struct RandomStencil {
  std::unique_ptr<dsl::Program> prog;
  std::int64_t n;

  explicit RandomStencil(std::uint64_t seed) {
    Rng rng(seed);
    n = rng.next_int(10, 34);
    const std::int64_t radius = rng.next_int(1, 3);
    prog = std::make_unique<dsl::Program>("random_" + std::to_string(seed));
    dsl::Var j = prog->var("j"), i = prog->var("i");
    dsl::GridRef B = prog->def_tensor_2d_timewin("B", 2, radius, ir::DataType::f64, n, n);

    // Random subset of the (2r+1)^2 box, always including the center.
    dsl::ExprH rhs = dsl::ExprH(rng.next_real(0.1, 0.5)) * B(j, i);
    for (std::int64_t dj = -radius; dj <= radius; ++dj)
      for (std::int64_t di = -radius; di <= radius; ++di) {
        if ((dj == 0 && di == 0) || rng.next_double() < 0.5) continue;
        rhs = rhs + dsl::ExprH(rng.next_real(-0.1, 0.1)) * B(j + dj, i + di);
      }
    auto& k = prog->kernel("k", {j, i}, rhs);

    // Random legal schedule: tile sizes in [2, n], random outer/inner
    // interleaving that keeps inner below its outer, random parallelism.
    const std::int64_t tj = rng.next_int(2, n), ti = rng.next_int(2, n);
    k.tile({tj, ti});
    switch (rng.next_int(0, 2)) {
      case 0:
        k.reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
        break;
      case 1:
        k.reorder({"i_outer", "j_outer", "j_inner", "i_inner"});
        break;
      default:
        k.reorder({"j_outer", "j_inner", "i_outer", "i_inner"});
        break;
    }
    if (rng.next_double() < 0.7)
      k.parallel(rng.next_double() < 0.5 ? "j_outer" : "i_outer",
                 static_cast<int>(rng.next_int(2, 8)));

    prog->def_stencil("st", B,
                      rng.next_real(0.3, 0.8) * k[prog->t() - 1] +
                          rng.next_real(0.1, 0.5) * k[prog->t() - 2]);
  }
};

class RandomScheduleAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScheduleAgreement, ScheduledEqualsReference) {
  RandomStencil rs(GetParam());
  const auto& st = rs.prog->stencil();
  exec::GridStorage<double> a(st.state()), b(st.state());
  for (int s = 0; s < a.slots(); ++s) {
    a.fill_random(s, GetParam() * 31 + static_cast<std::uint64_t>(s));
    b.fill_random(s, GetParam() * 31 + static_cast<std::uint64_t>(s));
  }
  exec::run_scheduled(st, rs.prog->primary_schedule(), a, 1, 5, exec::Boundary::ZeroHalo);
  exec::run_reference(st, b, 1, 5, exec::Boundary::ZeroHalo);
  EXPECT_EQ(exec::max_relative_error(a, a.slot_for_time(5), b, b.slot_for_time(5)), 0.0)
      << rs.prog->primary_schedule().to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleAgreement,
                         ::testing::Range<std::uint64_t>(1, 21));

class RandomDecomposition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDecomposition, DistributedEqualsSingleNode) {
  Rng rng(GetParam() * 977);
  const std::int64_t nj = rng.next_int(8, 20), ni = rng.next_int(8, 20);
  const int pj = static_cast<int>(rng.next_int(1, 3));
  const int pi = static_cast<int>(rng.next_int(1, 3));
  if (nj < 2 * pj || ni < 2 * pi) GTEST_SKIP();

  dsl::Program prog("dist_prop");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  dsl::GridRef B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, nj, ni);
  auto& k = prog.kernel("k", {j, i},
                        dsl::ExprH(0.3) * B(j, i) + dsl::ExprH(0.2) * B(j - 1, i) +
                            dsl::ExprH(0.2) * B(j + 1, i) + dsl::ExprH(0.1) * B(j, i - 1) +
                            dsl::ExprH(0.1) * B(j, i + 1) + dsl::ExprH(0.05) * B(j - 1, i - 1) +
                            dsl::ExprH(0.05) * B(j + 1, i + 1));
  prog.def_stencil("st", B, 0.6 * k[prog.t() - 1] + 0.4 * k[prog.t() - 2]);
  const auto& st = prog.stencil();

  auto seed_value = [&](std::int64_t t, std::int64_t gj, std::int64_t gi) {
    return std::sin(static_cast<double>(gj * 131 + gi + 7 * t)) * 0.5;
  };

  exec::GridStorage<double> global(st.state());
  for (int back = 0; back < st.time_window() - 1; ++back) {
    const int slot = global.slot_for_time(-back);
    global.for_each_interior([&](std::array<std::int64_t, 3> c) {
      global.at(slot, c) = seed_value(-back, c[0], c[1]);
    });
  }
  exec::run_reference(st, global, 1, 4, exec::Boundary::ZeroHalo);

  comm::CartDecomp dec({pj, pi}, {nj, ni});
  comm::SimWorld world(dec.size());
  std::vector<double> max_err(static_cast<std::size_t>(dec.size()), 0.0);
  world.run([&](comm::RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor =
        ir::make_sp_tensor("B", ir::DataType::f64,
                           {dec.local_extent(r, 0), dec.local_extent(r, 1)}, 1, 3);
    exec::GridStorage<double> local(local_tensor);
    const std::int64_t oj = dec.local_offset(r, 0), oi = dec.local_offset(r, 1);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        local.at(slot, c) = seed_value(-back, oj + c[0], oi + c[1]);
      });
    }
    comm::run_distributed(ctx, dec, st, local, 1, 4);
    double worst = 0.0;
    const int slot = local.slot_for_time(4);
    local.for_each_interior([&](std::array<std::int64_t, 3> c) {
      const double want = global.at(global.slot_for_time(4), {oj + c[0], oi + c[1], 0});
      worst = std::max(worst, std::abs(local.at(slot, c) - want));
    });
    max_err[static_cast<std::size_t>(r)] = worst;
  });
  for (double e : max_err) EXPECT_LT(e, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDecomposition,
                         ::testing::Range<std::uint64_t>(1, 13));

class WindowDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowDepthSweep, DeepTimeDependenciesStayConsistent) {
  // Stencils reading t-1 .. t-D for D in 1..4: the window must retain all
  // D previous steps and the scheduled run must match the reference.
  const int depth = GetParam();
  dsl::Program prog("deep_" + std::to_string(depth));
  dsl::Var j = prog.var("j"), i = prog.var("i");
  dsl::GridRef B = prog.def_tensor_2d_timewin("B", depth, 1, ir::DataType::f64, 16, 16);
  auto& k = prog.kernel("k", {j, i},
                        dsl::ExprH(0.2) * (B(j, i - 1) + B(j, i + 1)) +
                            dsl::ExprH(0.4) * B(j, i));
  dsl::TermSum sum;
  for (int d = 1; d <= depth; ++d)
    sum.terms.push_back((0.9 / depth) * k[prog.t() - d]);
  prog.def_stencil("st", B, sum);
  EXPECT_EQ(prog.stencil().time_window(), depth + 1);

  prog.input(dsl::GridRef(prog.stencil().state()), 99);
  EXPECT_LT(prog.relative_error_vs_reference(1, depth + 3), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Depths, WindowDepthSweep, ::testing::Range(1, 5));

}  // namespace
}  // namespace msc
