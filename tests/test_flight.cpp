// Tests of the execution flight recorder (src/prof/flight): ring capacity
// and wraparound ordering, seqlock-lite drain consistency under concurrent
// writers, the msc-flight-v1 dump schema, plan-fingerprint scoping, and the
// resilience-layer crash dump that msc-chaos attaches to its reports.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "prof/flight.hpp"
#include "resilience/chaos.hpp"
#include "workload/report.hpp"
#include "workload/stencils.hpp"

namespace msc::prof {
namespace {

// ---- ring semantics -----------------------------------------------------

TEST(Flight, RecordsAndDrainsInOrder) {
  FlightRecorder rec;
  for (int i = 0; i < 10; ++i)
    rec.record(FlightKind::RowChunk, static_cast<std::uint64_t>(i) * 100,
               static_cast<std::uint64_t>(i) * 100 + 50, i, 2 * i);
  const auto dumps = rec.drain();
  ASSERT_EQ(dumps.size(), 1u);
  ASSERT_EQ(dumps[0].events.size(), 10u);
  EXPECT_EQ(dumps[0].recorded, 10u);
  for (int i = 0; i < 10; ++i) {
    const auto& ev = dumps[0].events[static_cast<std::size_t>(i)];
    EXPECT_EQ(ev.kind, FlightKind::RowChunk);
    EXPECT_EQ(ev.a, i);          // oldest first
    EXPECT_EQ(ev.b, 2 * i);
    EXPECT_EQ(ev.seq, static_cast<std::uint32_t>(i));
    EXPECT_EQ(ev.dur_ns, 50u);
  }
}

TEST(Flight, WraparoundKeepsNewestSuffixInOrder) {
  FlightRecorder rec;
  const std::int64_t total = 3 * static_cast<std::int64_t>(FlightRecorder::kRingCapacity) + 7;
  for (std::int64_t i = 0; i < total; ++i)
    rec.record(FlightKind::Step, static_cast<std::uint64_t>(i),
               static_cast<std::uint64_t>(i) + 1, i);
  const auto dumps = rec.drain();
  ASSERT_EQ(dumps.size(), 1u);
  const auto& d = dumps[0];
  EXPECT_EQ(d.recorded, static_cast<std::uint64_t>(total));
  // The ring holds exactly the newest kRingCapacity events, oldest first.
  ASSERT_EQ(d.events.size(), FlightRecorder::kRingCapacity);
  const std::int64_t first = total - static_cast<std::int64_t>(FlightRecorder::kRingCapacity);
  for (std::size_t i = 0; i < d.events.size(); ++i) {
    EXPECT_EQ(d.events[i].a, first + static_cast<std::int64_t>(i));
    if (i > 0) EXPECT_EQ(d.events[i].seq, d.events[i - 1].seq + 1) << "gap at " << i;
  }
}

TEST(Flight, DrainLastNTruncatesFromTheOldEnd) {
  FlightRecorder rec;
  for (int i = 0; i < 100; ++i)
    rec.record(FlightKind::Wedge, 0, 1, i);
  const auto dumps = rec.drain(8);
  ASSERT_EQ(dumps.size(), 1u);
  ASSERT_EQ(dumps[0].events.size(), 8u);
  EXPECT_EQ(dumps[0].events.front().a, 92);  // newest 8, still oldest first
  EXPECT_EQ(dumps[0].events.back().a, 99);
}

TEST(Flight, ClearMakesEventsInvisibleButKeepsThreads) {
  FlightRecorder rec;
  rec.record(FlightKind::Step, 0, 1);
  ASSERT_EQ(rec.drain().size(), 1u);
  rec.clear();
  const auto dumps = rec.drain();
  ASSERT_EQ(dumps.size(), 1u);  // the ring registration survives
  EXPECT_TRUE(dumps[0].events.empty());
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(Flight, DisabledRecorderRecordsNothing) {
  FlightRecorder rec;
  rec.set_enabled(false);
  rec.record(FlightKind::Step, 0, 1);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.set_enabled(true);
  rec.record(FlightKind::Step, 0, 1);
  EXPECT_EQ(rec.total_recorded(), 1u);
}

// ---- concurrency --------------------------------------------------------

TEST(Flight, ConcurrentWritersVsDrainYieldConsistentSuffixes) {
  FlightRecorder rec;
  constexpr int kWriters = 4;
  constexpr std::int64_t kPerWriter = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&, w] {
      while (!go.load()) {
      }
      for (std::int64_t i = 0; i < kPerWriter; ++i)
        rec.record(FlightKind::RowChunk, static_cast<std::uint64_t>(i),
                   static_cast<std::uint64_t>(i) + 1, i, w);
    });

  go.store(true);
  // Drain repeatedly while the writers hammer their rings.  Every drained
  // suffix must be internally consistent: strictly consecutive sequence
  // numbers (no torn or duplicated slots) and monotone payloads.
  for (int round = 0; round < 50; ++round) {
    for (const auto& d : rec.drain()) {
      for (std::size_t i = 1; i < d.events.size(); ++i) {
        ASSERT_EQ(d.events[i].seq, d.events[i - 1].seq + 1)
            << "torn drain on tid " << d.tid << " round " << round;
        ASSERT_EQ(d.events[i].a, d.events[i - 1].a + 1);
      }
    }
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(rec.total_recorded(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
  const auto final_dumps = rec.drain();
  ASSERT_EQ(final_dumps.size(), static_cast<std::size_t>(kWriters));
  for (const auto& d : final_dumps) {
    EXPECT_EQ(d.recorded, static_cast<std::uint64_t>(kPerWriter));
    EXPECT_EQ(d.events.size(), FlightRecorder::kRingCapacity);
    EXPECT_EQ(d.events.back().a, kPerWriter - 1);
  }
}

// ---- plan fingerprints --------------------------------------------------

TEST(Flight, PlanFingerprintIsStableAndShapeSensitive) {
  const auto fp = plan_fingerprint(64, 64, 64, 14, 32);
  EXPECT_EQ(fp, plan_fingerprint(64, 64, 64, 14, 32));
  EXPECT_NE(fp, plan_fingerprint(64, 64, 64, 14, 33));
  EXPECT_NE(fp, plan_fingerprint(64, 64, 32, 14, 32));
  EXPECT_NE(fp, plan_fingerprint(64, 64, 64, 14, 32, 0xA07));
  EXPECT_NE(fp, 0u);
}

TEST(Flight, PlanScopesNestAndRestore) {
  const std::uint64_t before = current_flight_plan();
  {
    FlightPlanScope outer(111);
    EXPECT_EQ(current_flight_plan(), 111u);
    {
      FlightPlanScope inner(222);
      EXPECT_EQ(current_flight_plan(), 222u);
    }
    EXPECT_EQ(current_flight_plan(), 111u);
  }
  EXPECT_EQ(current_flight_plan(), before);
}

// ---- engine integration -------------------------------------------------

TEST(Flight, SweepEngineRecordsStepAndChunkSpans) {
  auto& flight = global_flight();
  flight.clear();
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  workload::apply_msc_schedule(*prog, info, "cpu");
  exec::GridStorage<double> g(prog->stencil().state());
  for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 3);
  exec::run_scheduled(prog->stencil(), prog->primary_schedule(), g, 1, 3,
                      exec::Boundary::ZeroHalo);

  int steps = 0, chunks = 0;
  std::uint64_t plan = 0;
  for (const auto& d : flight.drain())
    for (const auto& ev : d.events) {
      if (ev.kind == FlightKind::Step) ++steps;
      if (ev.kind == FlightKind::RowChunk) ++chunks;
      if (ev.plan != 0) plan = ev.plan;
      EXPECT_NE(ev.plan, 0u) << "engine spans must carry the plan fingerprint";
    }
  EXPECT_EQ(steps, 3);
  EXPECT_GE(chunks, 3);  // at least one chunk per step
  EXPECT_NE(plan, 0u);
  flight.clear();
}

// ---- dump schema + crash capture ----------------------------------------

TEST(Flight, DumpJsonSchema) {
  auto& flight = global_flight();
  flight.clear();
  flight.record(FlightKind::AotCompile, 10, 20, 1234);
  const auto doc = flight_dump_json(16);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "msc-flight-v1");
  EXPECT_EQ(doc.find("ring_capacity")->as_integer(),
            static_cast<long long>(FlightRecorder::kRingCapacity));
  const auto* threads = doc.find("threads");
  ASSERT_TRUE(threads != nullptr && threads->is_array());
  bool found = false;
  for (const auto& th : threads->elements())
    for (const auto& ev : th.find("events")->elements())
      if (ev.find("kind")->as_string() == "aot_compile" && ev.find("a")->as_integer() == 1234)
        found = true;
  EXPECT_TRUE(found);
  flight.clear();
}

TEST(Flight, ChaosCrashReportCarriesFlightDump) {
  using namespace msc::resilience;
  global_flight().clear();
  ChaosScenario sc;
  sc.workload = "3d7pt_star";
  sc.nranks = 2;
  sc.kind = FaultKind::Crash;
  sc.seed = 1;
  const ChaosResult res = run_chaos_scenario(sc);
  EXPECT_TRUE(res.ok) << res.note;

  // The dump is captured at the first crash and rides into the report.
  ASSERT_TRUE(res.flight_dump.is_object()) << "crash scenario must capture a flight dump";
  EXPECT_EQ(res.flight_dump.find("schema")->as_string(), "msc-flight-v1");
  bool crash_event = false;
  for (const auto& th : res.flight_dump.find("threads")->elements())
    for (const auto& ev : th.find("events")->elements())
      if (ev.find("kind")->as_string() == "crash") crash_event = true;
  EXPECT_TRUE(crash_event) << "the dump must include the crash instant itself";

  const auto doc = chaos_report({res});
  const auto& scenario = doc.find("scenarios")->elements().at(0);
  const auto* flight = scenario.find("flight");
  ASSERT_TRUE(flight != nullptr) << "msc-chaos-v1 crash entries must attach the dump";
  EXPECT_EQ(flight->find("schema")->as_string(), "msc-flight-v1");
  global_flight().clear();
}

}  // namespace
}  // namespace msc::prof
