// Edge cases across the stack: 1-D stencils end to end, degenerate grid
// sizes, halo wider than the stencil radius, zero-weight terms, error
// paths for misuse, and an fp32 codegen round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dsl/program.hpp"
#include "exec/executor.hpp"
#include "machine/cost_model.hpp"
#include "sunway/cg_sim.hpp"
#include "support/error.hpp"
#include "workload/stencils.hpp"

namespace msc {
namespace {

TEST(OneD, StencilEndToEnd) {
  // 1-D three-point smoother with 2 time deps through every stage.
  auto B = ir::make_sp_tensor("B", ir::DataType::f64, {64}, 1, 3);
  auto acc = [&](std::int64_t di) { return ir::make_access(B, {{"i", di}}); };
  auto rhs = ir::make_binary(
      ir::BinaryOp::Add,
      ir::make_binary(ir::BinaryOp::Mul, ir::make_float(0.5), acc(0)),
      ir::make_binary(ir::BinaryOp::Mul, ir::make_float(0.25),
                      ir::make_binary(ir::BinaryOp::Add, acc(-1), acc(1))));
  auto k = ir::make_kernel("k1d", ir::make_te_tensor("o", B), ir::default_axes(B), rhs);
  auto st = ir::make_stencil("st1d", B, {{k, -1, 0.7}, {k, -2, 0.3}});

  exec::GridStorage<double> a(B), b(B), c(B);
  for (int s = 0; s < 3; ++s) {
    a.fill_random(s, 3 + static_cast<std::uint64_t>(s));
    b.fill_random(s, 3 + static_cast<std::uint64_t>(s));
    c.fill_random(s, 3 + static_cast<std::uint64_t>(s));
  }
  schedule::Schedule sched(k);
  sched.tile({8});
  exec::run_scheduled(*st, sched, a, 1, 5, exec::Boundary::ZeroHalo);
  exec::run_reference(*st, b, 1, 5, exec::Boundary::ZeroHalo);
  EXPECT_EQ(exec::max_relative_error(a, a.slot_for_time(5), b, b.slot_for_time(5)), 0.0);

  // 1-D path of the Sunway functional simulator.
  schedule::Schedule sim_sched(k);
  sim_sched.tile({16});
  const auto sim = sunway::run_cg_sim(*st, sim_sched, c, 1, 5, exec::Boundary::ZeroHalo, {},
                                      machine::sunway_cg());
  EXPECT_LT(exec::max_relative_error(c, c.slot_for_time(5), b, b.slot_for_time(5)), 1e-12);
  EXPECT_GT(sim.dma.bytes, 0);
}

TEST(Degenerate, OnePointInterior) {
  dsl::Program prog("tiny");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 1, 1);
  auto& k = prog.kernel("k", {j, i},
                        dsl::ExprH(0.5) * B(j, i) + dsl::ExprH(0.25) * (B(j, i - 1) + B(j, i + 1)));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  prog.set_initial([](std::int64_t, std::array<std::int64_t, 3>) { return 4.0; });
  prog.run(1, 2);
  // Neighbors are all zero halo: value halves each step.
  EXPECT_DOUBLE_EQ(prog.value_at(2, {0, 0, 0}), 1.0);
}

TEST(Degenerate, HaloWiderThanRadius) {
  // Declaring halo 3 for a radius-1 stencil is legal and must not change
  // results relative to halo 1.
  auto run_with_halo = [](std::int64_t halo) {
    dsl::Program prog("halo" + std::to_string(halo));
    dsl::Var j = prog.var("j"), i = prog.var("i");
    auto B = prog.def_tensor_2d_timewin("B", 1, halo, ir::DataType::f64, 12, 12);
    auto& k = prog.kernel("k", {j, i},
                          dsl::ExprH(0.25) * (B(j, i - 1) + B(j, i + 1) + B(j - 1, i) +
                                              B(j + 1, i)));
    prog.def_stencil("st", B, k[prog.t() - 1]);
    prog.set_initial([](std::int64_t, std::array<std::int64_t, 3> c) {
      return static_cast<double>(c[0] * 17 + c[1]);
    });
    prog.run(1, 4);
    return prog.value_at(4, {5, 7, 0});
  };
  EXPECT_DOUBLE_EQ(run_with_halo(1), run_with_halo(3));
}

TEST(Degenerate, ZeroWeightTermDropsOut) {
  dsl::Program prog("zw");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, dsl::ExprH(0.5) * B(j, i));
  prog.def_stencil("st", B, 1.0 * k[prog.t() - 1] + 0.0 * k[prog.t() - 2]);
  prog.set_initial([](std::int64_t ts, std::array<std::int64_t, 3>) {
    return ts == 0 ? 8.0 : 123456.0;  // t-2 value must not matter
  });
  prog.run(1, 1);
  EXPECT_DOUBLE_EQ(prog.value_at(1, {3, 3, 0}), 4.0);
}

TEST(Misuse, RunWithoutStencilThrows) {
  dsl::Program prog("empty");
  EXPECT_THROW(prog.run(1, 2), Error);
}

TEST(Misuse, ValueAtBeforeAllocationThrows) {
  dsl::Program prog("noalloc");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, dsl::ExprH(0.5) * B(j, i));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  EXPECT_THROW(prog.value_at(0, {0, 0, 0}), Error);
}

TEST(Misuse, InputOnNonStateGridThrows) {
  dsl::Program prog("wronginput");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto C = prog.def_tensor_2d("C", 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, dsl::ExprH(0.5) * B(j, i));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  EXPECT_THROW(prog.input(C, 1), Error);
}

TEST(Misuse, SecondStencilRejected) {
  dsl::Program prog("two");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, dsl::ExprH(0.5) * B(j, i));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  EXPECT_THROW(prog.def_stencil("st2", B, k[prog.t() - 1]), Error);
}

TEST(Fp32Codegen, CompilesRunsAndUsesFloat) {
  const auto& info = workload::benchmark("2d9pt_star");
  auto prog = workload::make_program(info, ir::DataType::f32, {24, 24, 0});
  workload::apply_msc_schedule(*prog, info, "matrix", {8, 8, 0});
  const auto dir = std::filesystem::temp_directory_path() / "msc_fp32_codegen";
  std::filesystem::create_directories(dir);
  const auto src = prog->compile_to_source_code("c", dir.string());
  EXPECT_NE(src.find("float *restrict out"), std::string::npos);
  EXPECT_EQ(src.find("double *restrict out"), std::string::npos);

  const std::string cmd = "cc -O2 -std=c99 -o " + (dir / "prog").string() + " " +
                          (dir / "2d9pt_star.c").string() + " -lm && " +
                          (dir / "prog").string() + " 3";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buf[256];
  std::string out;
  while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  ASSERT_EQ(pclose(pipe), 0) << out;
  EXPECT_NE(out.find("checksum"), std::string::npos);
}

TEST(CostModel, DegenerateOneDimensionalSubgrid) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64);
  workload::apply_msc_schedule(*prog, info, "sunway");
  // A pencil-shaped sub-grid (1 x 1 x 256) must still produce finite costs.
  const auto kc = machine::estimate_subgrid(machine::sunway_cg(), prog->stencil(),
                                            prog->primary_schedule(),
                                            machine::profile_msc_sunway(), {1, 1, 256}, 1, true);
  EXPECT_GT(kc.seconds_per_step, 0.0);
  EXPECT_TRUE(std::isfinite(kc.seconds_per_step));
}

}  // namespace
}  // namespace msc
