// Communication-library tests: the simulated MPI runtime, cartesian
// decomposition, halo exchange correctness, distributed-vs-single-node
// equivalence, and the analytic network model.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/decompose.hpp"
#include "comm/halo_exchange.hpp"
#include "comm/network_model.hpp"
#include "comm/simmpi.hpp"
#include "exec/executor.hpp"
#include "support/error.hpp"
#include "workload/stencils.hpp"

namespace msc::comm {
namespace {

TEST(SimMpi, PingPong) {
  SimWorld world(2);
  world.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const int payload = 41;
      auto s = ctx.isend(1, 0, &payload, sizeof payload);
      int back = 0;
      auto r = ctx.irecv(1, 1, &back, sizeof back);
      ctx.wait(s);
      ctx.wait(r);
      EXPECT_EQ(back, 42);
    } else {
      int got = 0;
      auto r = ctx.irecv(0, 0, &got, sizeof got);
      ctx.wait(r);
      const int reply = got + 1;
      auto s = ctx.isend(0, 1, &reply, sizeof reply);
      ctx.wait(s);
    }
  });
}

TEST(SimMpi, TagsAreMatched) {
  SimWorld world(2);
  world.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const int a = 1, b = 2;
      ctx.isend(1, /*tag=*/7, &a, sizeof a);
      ctx.isend(1, /*tag=*/9, &b, sizeof b);
    } else {
      int nine = 0, seven = 0;
      // Receive in the opposite order of the sends.
      auto r9 = ctx.irecv(0, 9, &nine, sizeof nine);
      auto r7 = ctx.irecv(0, 7, &seven, sizeof seven);
      ctx.wait(r9);
      ctx.wait(r7);
      EXPECT_EQ(nine, 2);
      EXPECT_EQ(seven, 1);
    }
  });
}

TEST(SimMpi, BarrierSynchronizes) {
  SimWorld world(4);
  std::atomic<int> before{0};
  world.run([&](RankCtx& ctx) {
    before++;
    ctx.barrier();
    EXPECT_EQ(before.load(), 4);  // nobody passes until all arrived
  });
}

TEST(SimMpi, RankExceptionPropagates) {
  SimWorld world(3);
  EXPECT_THROW(world.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) throw Error("rank 1 exploded");
  }),
               Error);
}

TEST(CartDecomp, CoordsRoundTrip) {
  CartDecomp dec({2, 3, 4}, {16, 18, 20});
  EXPECT_EQ(dec.size(), 24);
  for (int r = 0; r < dec.size(); ++r) EXPECT_EQ(dec.rank_of(dec.coords_of(r)), r);
}

TEST(CartDecomp, NeighborsRespectBoundaries) {
  CartDecomp dec({2, 2}, {8, 8});
  EXPECT_EQ(dec.neighbor(0, 0, -1), -1);       // low edge
  EXPECT_EQ(dec.neighbor(0, 0, +1), dec.rank_of({1, 0}));
  EXPECT_EQ(dec.neighbor(3, 1, +1), -1);       // high edge
}

TEST(CartDecomp, RemainderGoesToLowRanks) {
  CartDecomp dec({3}, {10});
  EXPECT_EQ(dec.local_extent(0, 0), 4);  // 10 = 4 + 3 + 3
  EXPECT_EQ(dec.local_extent(1, 0), 3);
  EXPECT_EQ(dec.local_extent(2, 0), 3);
  EXPECT_EQ(dec.local_offset(0, 0), 0);
  EXPECT_EQ(dec.local_offset(1, 0), 4);
  EXPECT_EQ(dec.local_offset(2, 0), 7);
  // Extents tile the domain exactly.
  std::int64_t total = 0;
  for (int r = 0; r < 3; ++r) total += dec.local_extent(r, 0);
  EXPECT_EQ(total, 10);
}

TEST(CartDecomp, RejectsOversplit) {
  EXPECT_THROW(CartDecomp({8}, {4}), Error);
  EXPECT_THROW(CartDecomp({2, 2}, {8}), Error);
}

TEST(HaloExchange, NeighborValuesArriveBothWays) {
  // 1-D domain of 8 points over 2 ranks; after the exchange, each rank's
  // outer halo must hold the neighbor's edge value.
  auto tensor = ir::make_sp_tensor("B", ir::DataType::f64, {4}, 1, 1);
  CartDecomp dec({2}, {8});
  SimWorld world(2);
  world.run([&](RankCtx& ctx) {
    exec::GridStorage<double> g(tensor);
    for (std::int64_t i = 0; i < 4; ++i)
      g.at(0, {i, 0, 0}) = static_cast<double>(ctx.rank() * 100 + i);
    g.fill_halo(0, exec::Boundary::ZeroHalo);
    exchange_halo(ctx, dec, g, 0);
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(g.at(0, {4, 0, 0}), 100.0);  // rank 1's first point
      EXPECT_DOUBLE_EQ(g.at(0, {-1, 0, 0}), 0.0);   // global edge stays zero
    } else {
      EXPECT_DOUBLE_EQ(g.at(0, {-1, 0, 0}), 3.0);   // rank 0's last point
      EXPECT_DOUBLE_EQ(g.at(0, {4, 0, 0}), 0.0);
    }
  });
}

TEST(HaloExchange, CornersPropagateFor2dBoxStencils) {
  // Dimension-sequential exchange must deliver diagonal-neighbor values
  // into the halo corners (needed by box stencils).
  auto tensor = ir::make_sp_tensor("B", ir::DataType::f64, {3, 3}, 1, 1);
  CartDecomp dec({2, 2}, {6, 6});
  SimWorld world(4);
  world.run([&](RankCtx& ctx) {
    exec::GridStorage<double> g(tensor);
    g.for_each_interior([&](std::array<std::int64_t, 3> c) {
      g.at(0, c) = static_cast<double>(ctx.rank());
    });
    g.fill_halo(0, exec::Boundary::ZeroHalo);
    exchange_halo(ctx, dec, g, 0);
    if (ctx.rank() == 0) {
      // Rank 0's bottom-right halo corner holds rank 3's value.
      EXPECT_DOUBLE_EQ(g.at(0, {3, 3, 0}), 3.0);
    }
  });
}

/// Distributed run vs single-node run: partition a 2-D stencil over a 2x2
/// rank grid, step both, and compare the gathered interior point-for-point.
TEST(DistributedRun, MatchesSingleNodeExecution) {
  const auto& info = workload::benchmark("2d9pt_box");
  const std::array<std::int64_t, 3> grid{12, 12, 0};
  auto prog = workload::make_program(info, ir::DataType::f64, grid);
  const auto& st = prog->stencil();

  // Single-node ground truth.
  exec::GridStorage<double> global(st.state());
  // Seed by *global coordinate* so rank sub-grids can reproduce it.
  auto seed_value = [](std::int64_t t, std::int64_t j, std::int64_t i) {
    return 0.001 * static_cast<double>(t + 1) * static_cast<double>(j * 100 + i + 1);
  };
  for (int back = 0; back < st.time_window() - 1; ++back) {
    const int slot = global.slot_for_time(-back);
    global.for_each_interior([&](std::array<std::int64_t, 3> c) {
      global.at(slot, c) = seed_value(-back, c[0], c[1]);
    });
  }
  exec::run_reference(st, global, 1, 5, exec::Boundary::ZeroHalo);

  // Distributed run over 2x2 ranks.
  CartDecomp dec({2, 2}, {12, 12});
  SimWorld world(4);
  std::array<std::vector<double>, 4> gathered;  // rank -> flat local interior
  world.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor("B", ir::DataType::f64,
                                           {dec.local_extent(r, 0), dec.local_extent(r, 1)},
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    const std::int64_t oj = dec.local_offset(r, 0), oi = dec.local_offset(r, 1);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        local.at(slot, c) = seed_value(-back, oj + c[0], oi + c[1]);
      });
    }
    run_distributed(ctx, dec, st, local, 1, 5);
    auto& out = gathered[static_cast<std::size_t>(r)];
    const int slot = local.slot_for_time(5);
    local.for_each_interior(
        [&](std::array<std::int64_t, 3> c) { out.push_back(local.at(slot, c)); });
  });

  // Compare every rank's interior against the global grid.
  for (int r = 0; r < 4; ++r) {
    const std::int64_t oj = dec.local_offset(r, 0), oi = dec.local_offset(r, 1);
    std::size_t n = 0;
    const int slot = global.slot_for_time(5);
    for (std::int64_t j = 0; j < dec.local_extent(r, 0); ++j)
      for (std::int64_t i = 0; i < dec.local_extent(r, 1); ++i, ++n) {
        const double want = global.at(slot, {oj + j, oi + i, 0});
        const double got = gathered[static_cast<std::size_t>(r)][n];
        EXPECT_NEAR(got, want, std::abs(want) * 1e-12 + 1e-15)
            << "rank " << r << " point (" << j << "," << i << ")";
      }
  }
}

TEST(DistributedRun, ThreeDimensionalDecompositionMatches) {
  // 3-D stencil over a 2x1x2 rank grid with uneven splits.
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {10, 7, 9});
  const auto& st = prog->stencil();

  auto seed_value = [](std::int64_t t, std::int64_t k, std::int64_t j, std::int64_t i) {
    return 0.001 * static_cast<double>((k * 61 + j * 13 + i * 3 + t) % 211);
  };
  exec::GridStorage<double> global(st.state());
  for (int back = 0; back < st.time_window() - 1; ++back) {
    const int slot = global.slot_for_time(-back);
    global.for_each_interior([&](std::array<std::int64_t, 3> c) {
      global.at(slot, c) = seed_value(-back, c[0], c[1], c[2]);
    });
  }
  exec::run_reference(st, global, 1, 4, exec::Boundary::ZeroHalo);

  CartDecomp dec({2, 1, 2}, {10, 7, 9});
  SimWorld world(4);
  std::vector<double> worst(4, 0.0);
  world.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor(
        "B", ir::DataType::f64,
        {dec.local_extent(r, 0), dec.local_extent(r, 1), dec.local_extent(r, 2)},
        st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    const std::int64_t ok = dec.local_offset(r, 0), oj = dec.local_offset(r, 1),
                       oi = dec.local_offset(r, 2);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        local.at(slot, c) = seed_value(-back, ok + c[0], oj + c[1], oi + c[2]);
      });
    }
    run_distributed(ctx, dec, st, local, 1, 4);
    const int slot = local.slot_for_time(4);
    local.for_each_interior([&](std::array<std::int64_t, 3> c) {
      const double want =
          global.at(global.slot_for_time(4), {ok + c[0], oj + c[1], oi + c[2]});
      worst[static_cast<std::size_t>(r)] =
          std::max(worst[static_cast<std::size_t>(r)], std::abs(local.at(slot, c) - want));
    });
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(worst[static_cast<std::size_t>(r)], 0.0) << r;
}

TEST(OverlappedRun, MatchesPlainDistributedAndSingleNode) {
  // Star stencil: the comm/compute-overlapped runtime must agree exactly
  // with the corner-propagating plain runtime and the single-node run.
  const auto& info = workload::benchmark("2d9pt_star");  // radius-2 star
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 0});
  const auto& st = prog->stencil();

  auto seed_value = [](std::int64_t t, std::int64_t gj, std::int64_t gi) {
    return 0.01 * static_cast<double>((gj * 31 + gi * 7 + t) % 97);
  };

  exec::GridStorage<double> global(st.state());
  for (int back = 0; back < st.time_window() - 1; ++back) {
    const int slot = global.slot_for_time(-back);
    global.for_each_interior([&](std::array<std::int64_t, 3> c) {
      global.at(slot, c) = seed_value(-back, c[0], c[1]);
    });
  }
  exec::run_reference(st, global, 1, 5, exec::Boundary::ZeroHalo);

  CartDecomp dec({2, 2}, {16, 16});
  SimWorld world(4);
  std::vector<double> worst(4, 0.0);
  std::vector<std::int64_t> overlapped_points(4, 0);
  world.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor("B", ir::DataType::f64,
                                           {dec.local_extent(r, 0), dec.local_extent(r, 1)},
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    const std::int64_t oj = dec.local_offset(r, 0), oi = dec.local_offset(r, 1);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        local.at(slot, c) = seed_value(-back, oj + c[0], oi + c[1]);
      });
    }
    const auto stats = run_distributed_overlapped(ctx, dec, st, local, 1, 5);
    overlapped_points[static_cast<std::size_t>(r)] = stats.interior_points_overlapped;
    const int slot = local.slot_for_time(5);
    local.for_each_interior([&](std::array<std::int64_t, 3> c) {
      const double want = global.at(global.slot_for_time(5), {oj + c[0], oi + c[1], 0});
      worst[static_cast<std::size_t>(r)] =
          std::max(worst[static_cast<std::size_t>(r)], std::abs(local.at(slot, c) - want));
    });
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(worst[static_cast<std::size_t>(r)], 0.0) << "rank " << r;
    // 8x8 sub-grid, radius 2: (8-4)^2 = 16 interior cells per step x 5.
    EXPECT_EQ(overlapped_points[static_cast<std::size_t>(r)], 16 * 5);
  }
}

TEST(OverlappedRun, BoxStencilsOverlapViaPlanExchange) {
  // The 26-direction plan exchange delivers halo corners in the same phase
  // as faces, so box stencils — which read diagonal neighbors — are now
  // overlappable too.  Corner-dependent 2x2 decomposition against the
  // single-node reference, exact match required.
  const auto& info = workload::benchmark("2d9pt_box");
  auto prog = workload::make_program(info, ir::DataType::f64, {12, 12, 0});
  const auto& st = prog->stencil();

  auto seed_value = [](std::int64_t t, std::int64_t gj, std::int64_t gi) {
    return 0.01 * static_cast<double>((gj * 31 + gi * 7 + t) % 97);
  };
  exec::GridStorage<double> global(st.state());
  for (int back = 0; back < st.time_window() - 1; ++back) {
    const int slot = global.slot_for_time(-back);
    global.for_each_interior([&](std::array<std::int64_t, 3> c) {
      global.at(slot, c) = seed_value(-back, c[0], c[1]);
    });
  }
  exec::run_reference(st, global, 1, 4, exec::Boundary::ZeroHalo);

  CartDecomp dec({2, 2}, {12, 12});
  SimWorld world(4);
  std::vector<double> worst(4, 0.0);
  world.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor("B", ir::DataType::f64,
                                           {dec.local_extent(r, 0), dec.local_extent(r, 1)},
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    const std::int64_t oj = dec.local_offset(r, 0), oi = dec.local_offset(r, 1);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        local.at(slot, c) = seed_value(-back, oj + c[0], oi + c[1]);
      });
    }
    run_distributed_overlapped(ctx, dec, st, local, 1, 4);
    const int slot = local.slot_for_time(4);
    local.for_each_interior([&](std::array<std::int64_t, 3> c) {
      const double want = global.at(global.slot_for_time(4), {oj + c[0], oi + c[1], 0});
      worst[static_cast<std::size_t>(r)] =
          std::max(worst[static_cast<std::size_t>(r)], std::abs(local.at(slot, c) - want));
    });
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(worst[static_cast<std::size_t>(r)], 0.0) << r;
}

TEST(SinglePhaseExchange, InteriorFacesOnly) {
  // begin/finish exchange must deliver face values without touching halo
  // corners (those stay at their previous contents).
  auto tensor = ir::make_sp_tensor("B", ir::DataType::f64, {4, 4}, 1, 1);
  CartDecomp dec({2, 2}, {8, 8});
  SimWorld world(4);
  world.run([&](RankCtx& ctx) {
    exec::GridStorage<double> g(tensor);
    g.for_each_interior([&](std::array<std::int64_t, 3> c) {
      g.at(0, c) = static_cast<double>(ctx.rank() * 100 + c[0] * 10 + c[1]);
    });
    g.fill_halo(0, exec::Boundary::ZeroHalo);
    auto pending = begin_exchange_async(ctx, dec, g, 0);
    finish_exchange_async(ctx, pending, g, 0);
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(g.at(0, {0, 4, 0}), 100.0);  // rank 1's (0,0)
      EXPECT_DOUBLE_EQ(g.at(0, {4, 0, 0}), 200.0);  // rank 2's (0,0)
      EXPECT_DOUBLE_EQ(g.at(0, {4, 4, 0}), 0.0);    // corner untouched
    }
  });
}

// ---- decomposition edge cases -------------------------------------------

/// Distributed-vs-single-node equivalence harness for 2-D benchmarks:
/// seeds both sides by global coordinate, steps `steps` times, and expects
/// the gathered rank interiors to reproduce the global grid exactly.
/// With `periodic` the process grid wraps in both dimensions and the
/// single-node reference runs with wrap-around boundaries.
void expect_distributed_matches_2d(const std::string& bench,
                                   std::array<std::int64_t, 3> grid,
                                   std::vector<int> proc_dims, std::int64_t steps,
                                   bool periodic = false) {
  const auto& info = workload::benchmark(bench);
  auto prog = workload::make_program(info, ir::DataType::f64, grid);
  const auto& st = prog->stencil();
  const auto bc = periodic ? exec::Boundary::Periodic : exec::Boundary::ZeroHalo;

  // Deliberately asymmetric in j vs i so a halo delivered to the wrong
  // side (the coincident-neighbor failure mode) changes the result.
  auto seed_value = [](std::int64_t t, std::int64_t j, std::int64_t i) {
    return 0.001 * static_cast<double>((j * 47 + i * 5 + t) % 139);
  };
  exec::GridStorage<double> global(st.state());
  for (int back = 0; back < st.time_window() - 1; ++back) {
    const int slot = global.slot_for_time(-back);
    global.for_each_interior([&](std::array<std::int64_t, 3> c) {
      global.at(slot, c) = seed_value(-back, c[0], c[1]);
    });
  }
  exec::run_reference(st, global, 1, steps, bc);

  CartDecomp dec(proc_dims, {grid[0], grid[1]},
                 std::vector<bool>(proc_dims.size(), periodic));
  SimWorld world(dec.size());
  std::vector<double> worst(static_cast<std::size_t>(dec.size()), 0.0);
  world.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor("B", ir::DataType::f64,
                                           {dec.local_extent(r, 0), dec.local_extent(r, 1)},
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    const std::int64_t oj = dec.local_offset(r, 0), oi = dec.local_offset(r, 1);
    for (int back = 0; back < st.time_window() - 1; ++back) {
      const int slot = local.slot_for_time(-back);
      local.for_each_interior([&](std::array<std::int64_t, 3> c) {
        local.at(slot, c) = seed_value(-back, oj + c[0], oi + c[1]);
      });
    }
    run_distributed(ctx, dec, st, local, 1, steps);
    const int slot = local.slot_for_time(steps);
    local.for_each_interior([&](std::array<std::int64_t, 3> c) {
      const double want = global.at(global.slot_for_time(steps), {oj + c[0], oi + c[1], 0});
      worst[static_cast<std::size_t>(r)] =
          std::max(worst[static_cast<std::size_t>(r)], std::abs(local.at(slot, c) - want));
    });
  });
  for (int r = 0; r < dec.size(); ++r)
    EXPECT_EQ(worst[static_cast<std::size_t>(r)], 0.0) << bench << " rank " << r;
}

TEST(DecompositionEdge, NonPowerOfTwoRankGrid) {
  // 3x2 = 6 ranks with uneven splits along both dimensions (13 = 5+4+4,
  // 11 = 6+5): remainder handling and neighbor lookup off the power-of-two
  // happy path.
  expect_distributed_matches_2d("2d9pt_box", {13, 11, 0}, {3, 2}, 4);
}

TEST(DecompositionEdge, OneCellWideSubdomains) {
  // 4 ranks over 5 rows: ranks 1-3 own a single 1-cell-wide row slab, so
  // their sent face IS their whole interior and both faces overlap.
  CartDecomp dec({4}, {5});
  EXPECT_EQ(dec.local_extent(0, 0), 2);
  for (int r = 1; r < 4; ++r) EXPECT_EQ(dec.local_extent(r, 0), 1);
  expect_distributed_matches_2d("2d9pt_box", {5, 6, 0}, {4, 1}, 3);
}

TEST(DecompositionEdge, HaloWidthEqualsLocalExtent) {
  // Radius-2 star over 2 ranks of 2 rows each: the exchanged halo slab is
  // exactly as thick as the owning sub-domain, so every interior cell is
  // both sent and received in one exchange.
  const auto& info = workload::benchmark("2d9pt_star");
  ASSERT_EQ(workload::make_program(info, ir::DataType::f64, {4, 6, 0})
                ->stencil()
                .state()
                ->halo(),
            2);
  CartDecomp dec({2}, {4});
  EXPECT_EQ(dec.local_extent(0, 0), 2);  // == halo width
  expect_distributed_matches_2d("2d9pt_star", {4, 6, 0}, {2, 1}, 3);
}

// ---- periodic decompositions --------------------------------------------

TEST(PeriodicDecomp, NeighborWrapsAndCoincides) {
  // 1x2 periodic grid: rank 0's left AND right neighbor along the split
  // dimension are both rank 1 (coincident neighbors); along the 1-rank
  // dimension every rank is its own neighbor.
  CartDecomp dec({1, 2}, {8, 8}, {true, true});
  EXPECT_TRUE(dec.periodic(0));
  EXPECT_EQ(dec.neighbor(0, 1, -1), 1);
  EXPECT_EQ(dec.neighbor(0, 1, +1), 1);
  EXPECT_EQ(dec.neighbor(1, 1, -1), 0);
  EXPECT_EQ(dec.neighbor(1, 1, +1), 0);
  EXPECT_EQ(dec.neighbor(0, 0, -1), 0);  // self along the 1-rank dim
  EXPECT_EQ(dec.neighbor(0, 0, +1), 0);

  // Non-periodic dims still report the domain edge.
  CartDecomp open({1, 2}, {8, 8});
  EXPECT_FALSE(open.periodic(1));
  EXPECT_EQ(open.neighbor(0, 1, -1), -1);
  EXPECT_EQ(open.neighbor(1, 1, +1), -1);

  // A 4-rank periodic ring wraps only at the ends.
  CartDecomp ring({4}, {16}, {true});
  EXPECT_EQ(ring.neighbor(0, 0, -1), 3);
  EXPECT_EQ(ring.neighbor(3, 0, +1), 0);
  EXPECT_EQ(ring.neighbor(1, 0, -1), 0);
  EXPECT_EQ(ring.neighbor(1, 0, +1), 2);
}

TEST(PeriodicDecomp, RejectsPeriodicSizeMismatch) {
  EXPECT_THROW(CartDecomp({2, 2}, {8, 8}, {true}), Error);
}

TEST(PeriodicDecomp, DistributedMatchesPeriodicReference) {
  // Regression: periodic decompositions used to be inexpressible — every
  // boundary rank saw -1 neighbors and kept Dirichlet halos, so wrap-around
  // problems could not be distributed at all.  2x2 wraps both dimensions.
  expect_distributed_matches_2d("2d9pt_box", {12, 10, 0}, {2, 2}, 4, /*periodic=*/true);
}

TEST(PeriodicDecomp, CoincidentNeighborRanksExchangeBothFaces) {
  // The 1x2 wrap makes each rank send its low AND high face to the same
  // peer; the face tags must keep the two messages apart or the halos land
  // on the wrong side (caught by the asymmetric seeding).
  expect_distributed_matches_2d("2d9pt_box", {10, 12, 0}, {1, 2}, 3, /*periodic=*/true);
}

TEST(PeriodicDecomp, SelfNeighborExchangesOwnFaces) {
  // A 1-rank periodic dimension exchanges with itself: the rank's own low
  // face must arrive in its own high halo and vice versa — equivalent to
  // the single-node periodic fill.
  expect_distributed_matches_2d("2d9pt_star", {8, 9, 0}, {1, 1}, 3, /*periodic=*/true);
}

TEST(NetworkModel, AsyncBeatsCentralized) {
  CartDecomp dec({4, 4}, {1024, 1024});
  const auto net = tianhe3_network();
  const auto async = halo_exchange_cost(net, dec, 1, 8, /*centralized=*/false);
  const auto central = halo_exchange_cost(net, dec, 1, 8, /*centralized=*/true);
  EXPECT_LT(async.seconds, central.seconds);
}

TEST(NetworkModel, CentralizedGapGrowsWithRankCount) {
  const auto net = tianhe3_network();
  CartDecomp small({2, 2}, {1024, 1024});
  CartDecomp large({8, 8}, {1024, 1024});
  const double gap_small = halo_exchange_cost(net, small, 1, 8, true).seconds /
                           halo_exchange_cost(net, small, 1, 8, false).seconds;
  const double gap_large = halo_exchange_cost(net, large, 1, 8, true).seconds /
                           halo_exchange_cost(net, large, 1, 8, false).seconds;
  // Physis's master bottleneck worsens with scale (paper §5.5).
  EXPECT_GT(gap_large, gap_small);
}

TEST(NetworkModel, HaloVolumeScalesWithRadius) {
  CartDecomp dec({4, 4}, {1024, 1024});
  const auto net = sunway_network();
  const auto r1 = halo_exchange_cost(net, dec, 1, 8);
  const auto r5 = halo_exchange_cost(net, dec, 5, 8);
  EXPECT_NEAR(static_cast<double>(r5.bytes_per_rank) /
                  static_cast<double>(r1.bytes_per_rank),
              5.0, 1e-9);
}

// ---- topology-aware rank mapping ----------------------------------------

TEST(RankMap, LinearPacksInRankOrder) {
  CartDecomp dec({4, 4}, {64, 64});
  Topology topo;
  topo.ranks_per_node = 4;
  topo.sockets_per_node = 2;
  RankMap map(dec, topo, MapStrategy::Linear);
  EXPECT_EQ(map.node_of(0), 0);
  EXPECT_EQ(map.node_of(3), 0);
  EXPECT_EQ(map.node_of(4), 1);
  EXPECT_EQ(map.socket_of(0), 0);
  EXPECT_EQ(map.socket_of(2), 1);  // second socket of node 0
  EXPECT_EQ(map.socket_of(4), 2);  // first socket of node 1
}

TEST(RankMap, HierarchicalFormsCompactBlocks) {
  // 4 ranks/node over a 4x4 grid: the greedy factor split must carve 2x2
  // node bricks, so each block's four ranks share a node.
  CartDecomp dec({4, 4}, {64, 64});
  Topology topo;
  topo.ranks_per_node = 4;
  RankMap map(dec, topo, MapStrategy::Hierarchical);
  EXPECT_EQ(map.node_block()[0], 2);
  EXPECT_EQ(map.node_block()[1], 2);
  EXPECT_EQ(map.node_of(dec.rank_of({0, 0})), map.node_of(dec.rank_of({1, 1})));
  EXPECT_NE(map.node_of(dec.rank_of({0, 0})), map.node_of(dec.rank_of({0, 2})));
}

TEST(PlanExchangeCost, HierarchicalMappingKeepsNeighborsOnNode) {
  // The whole point of topology-aware placement: a compact sub-brick block
  // turns most of the 8/26-direction envelope into on-node traffic, which
  // both shrinks the off-node fraction and the modelled exchange time.
  const auto net = tianhe3_network();
  CartDecomp dec({8, 8}, {1024, 1024});
  const RankMap lin(dec, net.topology, MapStrategy::Linear);
  const RankMap hier(dec, net.topology, MapStrategy::Hierarchical);
  const auto cl = plan_exchange_cost(net, dec, 1, 8, lin);
  const auto ch = plan_exchange_cost(net, dec, 1, 8, hier);
  EXPECT_LT(ch.off_node_fraction, cl.off_node_fraction);
  EXPECT_LT(ch.seconds, cl.seconds);
}

TEST(PlanExchangeCost, CoversFullDirectionEnvelope) {
  const auto net = sunway_network();
  CartDecomp dec3({4, 4, 4}, {256, 256, 256});
  const RankMap map3(dec3, net.topology, MapStrategy::Hierarchical);
  EXPECT_EQ(plan_exchange_cost(net, dec3, 1, 8, map3).messages_per_rank, 26);
  CartDecomp dec2({4, 4}, {1024, 1024});
  const RankMap map2(dec2, net.topology, MapStrategy::Hierarchical);
  EXPECT_EQ(plan_exchange_cost(net, dec2, 1, 8, map2).messages_per_rank, 8);
}

}  // namespace
}  // namespace msc::comm
