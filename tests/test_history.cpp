// Bench-history ledger tests: flattening msc-bench-v1 reports, the jsonl
// append/load round trip, config-hash scoping, direction heuristics, and the
// noise-aware regression gate msc-bench-diff drives in CI.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "prof/bench_report.hpp"
#include "prof/history.hpp"
#include "support/error.hpp"
#include "workload/report.hpp"

namespace msc::prof {
namespace {

using workload::Json;

Json make_report(double seconds, double gflops, const std::string& grid = "32x32x32") {
  Json doc = Json::object();
  doc["schema"] = Json::string("msc-bench-v1");
  doc["name"] = Json::string("unit_hist");
  doc["workload"] = Json::string("3d7pt_star");
  doc["config"] = Json::object();
  doc["config"]["grid"] = Json::string(grid);
  doc["config"]["steps"] = Json::string("4");
  Json row = Json::object();
  row["benchmark"] = Json::string("3d7pt_star");
  row["elapsed_seconds"] = Json::number(seconds);
  row["gflops"] = Json::number(gflops);
  row["note"] = Json::string("not a metric");
  Json& results = doc["results"];
  results = Json::array();
  results.push_back(std::move(row));
  doc["wall_seconds"] = Json::number(0.5);
  return doc;
}

TEST(History, FlattenExtractsNumericMetricsWithRowLabels) {
  const auto entry = flatten_bench_report(make_report(0.125, 40.0));
  EXPECT_EQ(entry.name, "unit_hist");
  EXPECT_EQ(entry.workload, "3d7pt_star");
  EXPECT_FALSE(entry.config_hash.empty());
  EXPECT_DOUBLE_EQ(entry.wall_seconds, 0.5);
  ASSERT_EQ(entry.metrics.size(), 2u);  // the string member is not a metric
  EXPECT_EQ(entry.metrics[0].first, "3d7pt_star.elapsed_seconds");
  EXPECT_DOUBLE_EQ(entry.metrics[0].second, 0.125);
  EXPECT_EQ(entry.metrics[1].first, "3d7pt_star.gflops");
}

TEST(History, FlattenRejectsWrongSchema) {
  Json doc = Json::object();
  doc["schema"] = Json::string("something-else");
  EXPECT_THROW(flatten_bench_report(doc), Error);
  EXPECT_THROW(flatten_bench_report(Json::object()), Error);
}

TEST(History, ConfigHashSeparatesConfigurations) {
  const auto a = config_hash(make_report(0.1, 40.0, "32x32x32"));
  const auto b = config_hash(make_report(0.2, 20.0, "32x32x32"));
  const auto c = config_hash(make_report(0.1, 40.0, "64x64x64"));
  EXPECT_EQ(a, b);  // results don't affect the hash, only name/workload/config
  EXPECT_NE(a, c);
}

TEST(History, EntryJsonRoundTrips) {
  const auto entry = flatten_bench_report(make_report(0.25, 10.0));
  const auto back = parse_history_entry(Json::parse(history_entry_json(entry).dump_compact()));
  EXPECT_EQ(back.name, entry.name);
  EXPECT_EQ(back.workload, entry.workload);
  EXPECT_EQ(back.config_hash, entry.config_hash);
  EXPECT_DOUBLE_EQ(back.wall_seconds, entry.wall_seconds);
  ASSERT_EQ(back.metrics.size(), entry.metrics.size());
  for (std::size_t i = 0; i < entry.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].first, entry.metrics[i].first);
    EXPECT_DOUBLE_EQ(back.metrics[i].second, entry.metrics[i].second);
  }
}

TEST(History, AppendAndLoadLedger) {
  const std::string dir = ::testing::TempDir() + "msc_history_test";
  const auto e1 = flatten_bench_report(make_report(0.10, 40.0));
  const auto e2 = flatten_bench_report(make_report(0.11, 38.0));
  append_history(dir, e1);  // creates the directory
  append_history(dir, e2);
  const auto loaded = load_history(history_path(dir, "unit_hist"));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].metrics[0].second, 0.10);
  EXPECT_DOUBLE_EQ(loaded[1].metrics[0].second, 0.11);
  std::remove(history_path(dir, "unit_hist").c_str());
}

TEST(History, MissingLedgerLoadsEmpty) {
  EXPECT_TRUE(load_history("/nonexistent/path/nothing.jsonl").empty());
}

TEST(History, DirectionHeuristics) {
  EXPECT_EQ(metric_direction("x.elapsed_seconds"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("x.dma_bytes"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("x.messages_per_rank"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("x.gflops"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("x.gain"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("x.overlap_efficiency"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("x.tiles"), MetricDirection::Informational);
}

// ---- the regression gate ------------------------------------------------

std::vector<HistoryEntry> synthetic_history(const std::vector<double>& seconds) {
  std::vector<HistoryEntry> history;
  for (double s : seconds) history.push_back(flatten_bench_report(make_report(s, 4.0 / s)));
  return history;
}

TEST(HistoryDiff, TwoTimesSlowdownRegresses) {
  const auto history = synthetic_history({0.100, 0.101, 0.099, 0.1005, 0.0995});
  const auto fresh = flatten_bench_report(make_report(0.200, 20.0));
  const auto report = diff_against_history(history, fresh);
  EXPECT_TRUE(report.regressed);
  EXPECT_EQ(report.baseline_runs, 5);
  // Both the slower time (lower-is-better) and the halved gflops
  // (higher-is-better) must trip.
  int tripped = 0;
  for (const auto& d : report.deltas)
    if (d.regressed) ++tripped;
  EXPECT_EQ(tripped, 2);
}

TEST(HistoryDiff, WithinNoiseRerunPasses) {
  const auto history = synthetic_history({0.100, 0.101, 0.099, 0.1005, 0.0995});
  const auto fresh = flatten_bench_report(make_report(0.1008, 39.7));
  const auto report = diff_against_history(history, fresh);
  EXPECT_FALSE(report.regressed);
  for (const auto& d : report.deltas) EXPECT_FALSE(d.regressed);
}

TEST(HistoryDiff, NoisyHistoryWidensTheThreshold) {
  // Run-to-run noise of ~±20%: a +15% result is inside 3*MAD and must pass,
  // even though it exceeds the 5% floor.
  const auto history = synthetic_history({0.080, 0.120, 0.095, 0.115, 0.100});
  const auto fresh = flatten_bench_report(make_report(0.115, 34.8));
  const auto report = diff_against_history(history, fresh);
  EXPECT_FALSE(report.regressed);
  for (const auto& d : report.deltas) {
    if (d.key == "3d7pt_star.elapsed_seconds") {
      EXPECT_GT(d.threshold, 0.05);
    }
  }
}

TEST(HistoryDiff, OtherConfigurationsAreInvisible) {
  // History holds only a different grid: the fresh run has no baseline.
  std::vector<HistoryEntry> history;
  for (double s : {0.1, 0.1, 0.1})
    history.push_back(flatten_bench_report(make_report(s, 40.0, "64x64x64")));
  const auto fresh = flatten_bench_report(make_report(0.9, 4.4, "32x32x32"));
  const auto report = diff_against_history(history, fresh);
  EXPECT_EQ(report.baseline_runs, 0);
  EXPECT_FALSE(report.regressed);
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_EQ(report.new_metrics.size(), 2u);  // every metric is baseline-seeding
}

TEST(HistoryDiff, BaselineUsesOnlyTheLastK) {
  // Ancient slow runs must not mask a regression against the recent window.
  std::vector<double> seconds = {0.50, 0.50, 0.50};           // old, slow
  for (int n = 0; n < 5; ++n) seconds.push_back(0.100);       // recent, fast
  const auto history = synthetic_history(seconds);
  const auto fresh = flatten_bench_report(make_report(0.200, 20.0));
  DiffOptions opts;
  opts.last_k = 5;
  const auto report = diff_against_history(history, fresh, opts);
  EXPECT_TRUE(report.regressed);
  for (const auto& d : report.deltas)
    if (d.key == "3d7pt_star.elapsed_seconds") {
      EXPECT_DOUBLE_EQ(d.baseline, 0.100);
      EXPECT_EQ(d.samples, 5);
    }
}

TEST(HistoryDiff, ImprovementIsNotARegression) {
  const auto history = synthetic_history({0.100, 0.101, 0.099, 0.1005, 0.0995});
  const auto fresh = flatten_bench_report(make_report(0.050, 80.0));  // 2x faster
  const auto report = diff_against_history(history, fresh);
  EXPECT_FALSE(report.regressed);
}

TEST(HistoryDiff, MarkdownTableCarriesTheVerdict) {
  const auto history = synthetic_history({0.100, 0.101, 0.099});
  const auto fresh = flatten_bench_report(make_report(0.300, 13.3));
  const auto report = diff_against_history(history, fresh);
  const std::string md = diff_markdown(fresh, report, {});
  EXPECT_NE(md.find("| metric |"), std::string::npos);
  EXPECT_NE(md.find("**REGRESSED**"), std::string::npos);
  EXPECT_NE(md.find("**verdict: REGRESSION**"), std::string::npos);

  const auto ok = diff_against_history(history, flatten_bench_report(make_report(0.100, 40.0)));
  EXPECT_NE(diff_markdown(flatten_bench_report(make_report(0.100, 40.0)), ok, {})
                .find("verdict: ok"),
            std::string::npos);
}

// ---- end to end through a real BenchReport ------------------------------

TEST(History, RealBenchReportFlattens) {
  BenchReport report("hist_e2e", "2d5pt_star");
  report.set_config("grid", "64x64");
  Json row = Json::object();
  row["label"] = Json::string("overlapped");
  row["elapsed_seconds"] = Json::number(0.125);
  report.add_result(std::move(row));
  report.set_wall_seconds(1.0);
  const auto entry = flatten_bench_report(Json::parse(report.to_json().dump()));
  ASSERT_EQ(entry.metrics.size(), 1u);
  EXPECT_EQ(entry.metrics[0].first, "overlapped.elapsed_seconds");
}

}  // namespace
}  // namespace msc::prof
