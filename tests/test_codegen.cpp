// Codegen tests: structural checks on every backend plus a full
// compile-and-run integration check — the generated serial C and OpenMP
// programs are built with the host compiler and their checksums compared,
// which pins the generated indexing/window logic to the host executor.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "check/oracles.hpp"
#include "codegen/codegen.hpp"
#include "dsl/program.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "workload/stencils.hpp"

// Compile-and-run tests need a host C compiler; on bare environments they
// skip with an explicit message instead of failing on the popen error.
#define MSC_REQUIRE_HOST_CC()                                                        \
  do {                                                                               \
    if (!msc::check::compiler_available())                                           \
      GTEST_SKIP() << "no host C compiler ('cc') on PATH; skipping compile-and-run " \
                      "codegen check";                                               \
  } while (0)

namespace msc::codegen {
namespace {

std::unique_ptr<dsl::Program> small_3d7pt(bool sunway_sched) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {20, 20, 20});
  workload::apply_msc_schedule(*prog, info, sunway_sched ? "sunway" : "matrix",
                               {4, 4, 8});
  return prog;
}

TEST(Codegen, ContextRequiresAffineStencil) {
  dsl::Program prog("nonaffine");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  dsl::GridRef B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("m", {j, i}, dsl::min(B(j, i), dsl::ExprH(1.0)));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  EXPECT_THROW(make_context(prog), Error);
}

TEST(Codegen, SerialCStructure) {
  auto prog = small_3d7pt(false);
  const auto ctx = make_context(*prog);
  const auto result = gen_c(ctx);
  const auto& src = result.files.at(result.main_file);
  EXPECT_NE(src.find("#define WIN 3"), std::string::npos);
  EXPECT_NE(src.find("#define HALO 1"), std::string::npos);
  EXPECT_NE(src.find("static void sweep"), std::string::npos);
  EXPECT_NE(src.find("checksum"), std::string::npos);
  EXPECT_NE(src.find("SLOT(t + (-2))"), std::string::npos);  // 2 time deps
  EXPECT_TRUE(result.files.contains("Makefile"));
}

TEST(Codegen, OpenMpBackendEmitsPragma) {
  auto prog = small_3d7pt(false);
  const auto result = gen_openmp(make_context(*prog));
  const auto& src = result.files.at(result.main_file);
  EXPECT_NE(src.find("#pragma omp parallel for num_threads(32)"), std::string::npos);
  EXPECT_NE(src.find("#include <omp.h>"), std::string::npos);
}

TEST(Codegen, AthreadBackendEmitsMasterAndSlave) {
  auto prog = small_3d7pt(true);
  const auto result = gen_athread(make_context(*prog));
  ASSERT_EQ(result.files.size(), 4u);  // master, slave, shim, Makefile
  EXPECT_TRUE(result.files.contains("athread_shim.h"));
  const auto& master = result.files.at("3d7pt_star_master.c");
  const auto& slave = result.files.at("3d7pt_star_slave.c");
  EXPECT_NE(master.find("athread_init()"), std::string::npos);
  EXPECT_NE(master.find("athread_spawn"), std::string::npos);
  EXPECT_NE(slave.find("athread_get"), std::string::npos);
  EXPECT_NE(slave.find("% 64) != my_id"), std::string::npos);  // CPE ownership
  EXPECT_NE(slave.find("SPM"), std::string::npos);
  EXPECT_NE(result.files.at("Makefile").find("sw5cc"), std::string::npos);
}

TEST(Codegen, OpenAccBackendEmitsDirectives) {
  auto prog = small_3d7pt(true);
  const auto result = gen_openacc(make_context(*prog));
  const auto& src = result.files.at(result.main_file);
  EXPECT_NE(src.find("#pragma acc parallel loop"), std::string::npos);
  EXPECT_NE(src.find("#pragma acc data copyin"), std::string::npos);
}

TEST(Codegen, MpiGridAddsGuardedExchange) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  prog->def_shape_mpi({2, 2, 2});
  const auto result = gen_c(make_context(*prog));
  const auto& src = result.files.at(result.main_file);
  EXPECT_NE(src.find("#ifdef MSC_WITH_MPI"), std::string::npos);
  EXPECT_NE(src.find("MPI_Isend"), std::string::npos);
  EXPECT_NE(src.find("MPI_Irecv"), std::string::npos);
  EXPECT_NE(src.find("MPI_Cart_create"), std::string::npos);
  EXPECT_NE(src.find("exchange_halo"), std::string::npos);
}

TEST(Codegen, UnknownTargetRejected) {
  auto prog = small_3d7pt(false);
  EXPECT_THROW(generate_files(make_context(*prog), "cuda"), Error);
}

// ---- compile & run ------------------------------------------------------

struct CompileResult {
  bool ok = false;
  std::string output;
};

CompileResult compile_and_run(const std::string& dir, const std::string& src_name,
                              const std::string& extra_flags) {
  CompileResult r;
  const std::string exe = dir + "/prog";
  const std::string cmd = "cc -O2 -std=c99 " + extra_flags + " -o " + exe + " " + dir + "/" +
                          src_name + " -lm 2>&1 && " + exe + " 4";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  r.ok = pclose(pipe) == 0;
  return r;
}

/// Runs the stencil on the host executor with the same seeding scheme the
/// generated mains use (seed 42 + 0x51ed2701 * slot) and returns the
/// interior checksum of the final timestep.
double host_checksum(dsl::Program& prog, std::int64_t timesteps) {
  prog.input(dsl::GridRef(prog.stencil().state()), 42);
  prog.run(1, timesteps);
  double sum = 0.0;
  const auto& st = prog.stencil().state();
  for (std::int64_t a = 0; a < st->extent(0); ++a)
    for (std::int64_t b = 0; b < st->extent(1); ++b)
      for (std::int64_t c = 0; c < (st->ndim() == 3 ? st->extent(2) : 1); ++c)
        sum += prog.value_at(timesteps, {a, b, c});
  return sum;
}

TEST(CodegenIntegration, GeneratedSerialCCompilesAndRuns) {
  MSC_REQUIRE_HOST_CC();
  auto prog = small_3d7pt(false);
  const auto dir = std::filesystem::temp_directory_path() / "msc_codegen_c";
  std::filesystem::create_directories(dir);
  prog->compile_to_source_code("c", dir.string());
  const auto r = compile_and_run(dir.string(), "3d7pt_star.c", "");
  ASSERT_TRUE(r.ok) << r.output;
  EXPECT_NE(r.output.find("checksum"), std::string::npos) << r.output;
}

TEST(CodegenIntegration, GeneratedOpenMpCompilesAndMatchesSerial) {
  MSC_REQUIRE_HOST_CC();
  auto prog = small_3d7pt(false);
  const auto dir = std::filesystem::temp_directory_path() / "msc_codegen_omp";
  std::filesystem::create_directories(dir);
  prog->compile_to_source_code("c", dir.string());
  prog->compile_to_source_code("openmp", dir.string());
  const auto serial = compile_and_run(dir.string(), "3d7pt_star.c", "");
  const auto omp = compile_and_run(dir.string(), "3d7pt_star_omp.c", "-fopenmp");
  ASSERT_TRUE(serial.ok) << serial.output;
  ASSERT_TRUE(omp.ok) << omp.output;
  // Same seeding, same term order: checksums must agree exactly.
  EXPECT_EQ(serial.output, omp.output);
}

TEST(CodegenIntegration, GeneratedCodeMatchesHostExecutorChecksum) {
  MSC_REQUIRE_HOST_CC();
  // Strongest codegen check: the AOT C program and the in-process executor
  // must compute bit-identical grids (same seeding order, same term order,
  // same double accumulation).
  auto prog = small_3d7pt(false);
  const auto dir = std::filesystem::temp_directory_path() / "msc_codegen_xcheck";
  std::filesystem::create_directories(dir);
  prog->compile_to_source_code("c", dir.string());
  const auto r = compile_and_run(dir.string(), "3d7pt_star.c", "");
  ASSERT_TRUE(r.ok) << r.output;
  double generated = 0.0;
  ASSERT_EQ(std::sscanf(r.output.c_str(), "checksum %lf", &generated), 1) << r.output;
  const double host = host_checksum(*prog, 4);
  EXPECT_NEAR(generated, host, std::abs(host) * 1e-12 + 1e-12);
}

TEST(CodegenIntegration, AthreadHostSimMatchesSerialChecksum) {
  MSC_REQUIRE_HOST_CC();
  // The Sunway master/slave pair compiles against the emitted pthread shim
  // (-DMSC_HOST_SIM) and must reproduce the serial backend's checksum —
  // this validates the athread loop structure, CPE task ownership and
  // window rotation, not just the source text.
  auto prog = small_3d7pt(true);
  const auto dir = std::filesystem::temp_directory_path() / "msc_codegen_athread";
  std::filesystem::create_directories(dir);
  prog->compile_to_source_code("sunway", dir.string());
  prog->compile_to_source_code("c", dir.string());

  const auto serial = compile_and_run(dir.string(), "3d7pt_star.c", "");
  ASSERT_TRUE(serial.ok) << serial.output;

  CompileResult hostsim;
  {
    const std::string exe = dir.string() + "/hostsim";
    const std::string cmd = "cc -O2 -std=c99 -DMSC_HOST_SIM -pthread -o " + exe + " " +
                            dir.string() + "/3d7pt_star_master.c " + dir.string() +
                            "/3d7pt_star_slave.c -lm 2>&1 && " + exe + " 4";
    FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[512];
    while (fgets(buf, sizeof buf, pipe) != nullptr) hostsim.output += buf;
    hostsim.ok = pclose(pipe) == 0;
  }
  ASSERT_TRUE(hostsim.ok) << hostsim.output;
  EXPECT_EQ(serial.output, hostsim.output);
}

TEST(CodegenIntegration, MpiGuardedCodeStillCompilesWithoutMpi) {
  MSC_REQUIRE_HOST_CC();
  const auto& info = workload::benchmark("2d9pt_box");
  auto prog = workload::make_program(info, ir::DataType::f64, {24, 24, 0});
  workload::apply_msc_schedule(*prog, info, "matrix", {8, 8, 0});
  prog->def_shape_mpi({2, 2});
  const auto dir = std::filesystem::temp_directory_path() / "msc_codegen_mpi";
  std::filesystem::create_directories(dir);
  prog->compile_to_source_code("c", dir.string());
  const auto r = compile_and_run(dir.string(), "2d9pt_box.c", "");
  ASSERT_TRUE(r.ok) << r.output;
}

TEST(CodegenIntegration, LocScalesWithStencilOrder) {
  // Table 6 precondition: larger stencils produce longer generated code,
  // while the DSL listing grows far slower.
  const auto small = workload::benchmark("2d9pt_box");
  const auto large = workload::benchmark("2d121pt_box");
  auto ps = workload::make_program(small, ir::DataType::f64, {32, 32, 0});
  auto pl = workload::make_program(large, ir::DataType::f64, {32, 32, 0});
  workload::apply_msc_schedule(*ps, small, "matrix", {8, 8, 0});
  workload::apply_msc_schedule(*pl, large, "matrix", {8, 8, 0});
  const int loc_s = count_loc(generate_files(make_context(*ps), "openmp")
                                  .files.at("2d9pt_box_omp.c"));
  const int loc_l = count_loc(generate_files(make_context(*pl), "openmp")
                                  .files.at("2d121pt_box_omp.c"));
  EXPECT_GT(loc_l, loc_s);
}

}  // namespace
}  // namespace msc::codegen
