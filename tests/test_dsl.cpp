// Unit tests of the DSL frontend: expression sugar, program building,
// stencil composition, error reporting and host execution plumbing.

#include <gtest/gtest.h>

#include "dsl/expr.hpp"
#include "dsl/program.hpp"
#include "ir/printer.hpp"
#include "support/error.hpp"

namespace msc::dsl {
namespace {

TEST(DslExpr, VarArithmeticFormsIdx) {
  Var i("i");
  Idx a = i + 2;
  EXPECT_EQ(a.axis, "i");
  EXPECT_EQ(a.offset, 2);
  Idx b = i - 3;
  EXPECT_EQ(b.offset, -3);
  Idx c = i;  // implicit zero offset
  EXPECT_EQ(c.offset, 0);
}

TEST(DslExpr, GridAccessBuildsIr) {
  Program prog("p");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d("B", 1, ir::DataType::f64, 8, 8);
  ExprH e = B(j, i - 1);
  ASSERT_TRUE(e.valid());
  EXPECT_EQ(e.ir()->kind, ir::ExprKind::TensorAccess);
  EXPECT_EQ(ir::to_string(e.ir()), "B[j,i-1]");
}

TEST(DslExpr, AccessArityChecked) {
  Program prog("p");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d("B", 1, ir::DataType::f64, 8, 8);
  EXPECT_THROW(B(j), Error);           // 2-D grid, 1 subscript
  EXPECT_THROW(B(j, i, i), Error);     // 2-D grid, 3 subscripts
}

TEST(DslExpr, ArithmeticOnEmptyExprThrows) {
  ExprH empty;
  EXPECT_THROW(empty + ExprH(1.0), Error);
  EXPECT_THROW(-empty, Error);
}

TEST(DslExpr, MinMaxCall) {
  Program prog("p");
  Var i = prog.var("i");
  GridRef B = prog.def_tensor_2d("B", 1, ir::DataType::f64, 8, 8);
  Var j = prog.var("j");
  auto e = max(min(B(j, i), ExprH(1.0)), call("sqrt", B(j, i)));
  EXPECT_TRUE(e.valid());
}

TEST(Program, DuplicateTensorRejected) {
  Program prog("p");
  prog.def_tensor_2d("B", 1, ir::DataType::f64, 8, 8);
  EXPECT_THROW(prog.def_tensor_2d("B", 1, ir::DataType::f64, 8, 8), Error);
}

TEST(Program, KernelAxisCountMustMatchGrid) {
  Program prog("p");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d("B", 1, ir::DataType::f64, 8, 8);
  EXPECT_THROW(prog.kernel("k", {i}, ExprH(0.5) * B(j, i)), Error);
}

TEST(Program, StencilNeedsPastTimestep) {
  Program prog("p");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, ExprH(0.5) * B(j, i));
  EXPECT_THROW(k[prog.t() - 0], Error);
}

TEST(Program, TimeWindowTooShallowRejected) {
  Program prog("p");
  Var j = prog.var("j"), i = prog.var("i");
  // One time dep declared, but stencil reaches t-2.
  GridRef B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, ExprH(0.5) * B(j, i));
  EXPECT_THROW(prog.def_stencil("st", B, k[prog.t() - 1] + k[prog.t() - 2]), Error);
}

TEST(Program, WeightedTermSum) {
  Program prog("p");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, ExprH(0.25) * (B(j, i - 1) + B(j, i + 1)));
  prog.def_stencil("st", B, 2.0 * k[prog.t() - 1] + 0.5 * k[prog.t() - 2]);
  const auto& st = prog.stencil();
  ASSERT_EQ(st.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(st.terms()[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(st.terms()[1].weight, 0.5);
}

TEST(Program, RunProducesExpectedLaplacianStep) {
  // One smoothing step with hand-checkable coefficients on a tiny grid.
  Program prog("tiny");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 4, 4);
  auto& k = prog.kernel(
      "avg", {j, i},
      ExprH(0.25) * (B(j, i - 1) + B(j, i + 1) + B(j - 1, i) + B(j + 1, i)));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  prog.set_initial([](std::int64_t, std::array<std::int64_t, 3>) { return 1.0; });
  prog.run(1, 1);
  // Interior point (1,1): all four neighbors are interior 1.0 -> 1.0.
  EXPECT_DOUBLE_EQ(prog.value_at(1, {1, 1, 0}), 1.0);
  // Corner (0,0): two neighbors in zero halo -> 0.25 * (1 + 1) = 0.5.
  EXPECT_DOUBLE_EQ(prog.value_at(1, {0, 0, 0}), 0.5);
}

TEST(Program, SchedulePrimitivesChain) {
  Program prog("sched");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 32, 32);
  auto& k = prog.kernel("k", {j, i}, ExprH(0.5) * B(j, i - 1) + ExprH(0.5) * B(j, i + 1));
  k.tile({8, 8})
      .reorder({"j_outer", "i_outer", "j_inner", "i_inner"})
      .cache_read("B", "rbuf")
      .cache_write("wbuf")
      .compute_at("rbuf", "i_outer")
      .compute_at("wbuf", "i_outer")
      .parallel("j_outer", 4);
  prog.def_stencil("st", B, k[prog.t() - 1] + k[prog.t() - 2]);
  EXPECT_TRUE(prog.primary_schedule().has_spm_pipeline());
  EXPECT_EQ(prog.primary_schedule().parallel_threads(), 4);
}

TEST(Program, RelativeErrorAgainstReferenceIsTiny) {
  Program prog("val");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 24, 24);
  auto& k = prog.kernel("k", {j, i},
                        ExprH(0.2) * B(j, i) + ExprH(0.2) * B(j, i - 1) +
                            ExprH(0.2) * B(j, i + 1) + ExprH(0.2) * B(j - 1, i) +
                            ExprH(0.2) * B(j + 1, i));
  k.tile({8, 8}).reorder({"j_outer", "i_outer", "j_inner", "i_inner"}).parallel("j_outer", 2);
  prog.def_stencil("st", B, 0.6 * k[prog.t() - 1] + 0.4 * k[prog.t() - 2]);
  prog.input(B, 7);
  // Paper §5.1: fp64 relative error < 1e-10.
  EXPECT_LT(prog.relative_error_vs_reference(1, 5), 1e-10);
}

TEST(Program, MpiShapeValidated) {
  Program prog("mpi");
  EXPECT_THROW(prog.def_shape_mpi({}), Error);
  EXPECT_THROW(prog.def_shape_mpi({2, 0}), Error);
  prog.def_shape_mpi({2, 2, 2});
  EXPECT_EQ(prog.mpi_shape().processes(), 8);
}

TEST(Program, DumpMentionsAllParts) {
  Program prog("dump");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("lap", {j, i}, ExprH(0.5) * B(j, i));
  prog.def_stencil("st", B, k[prog.t() - 1] + k[prog.t() - 2]);
  prog.def_shape_mpi({2, 2});
  const auto d = prog.dump();
  EXPECT_NE(d.find("tensor B"), std::string::npos);
  EXPECT_NE(d.find("lap"), std::string::npos);
  EXPECT_NE(d.find("st"), std::string::npos);
  EXPECT_NE(d.find("mpi grid"), std::string::npos);
}

TEST(Program, BindingsEnableSymbolicCoefficients) {
  Program prog("sym");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  ExprH c0(ir::make_var("c0", ir::DataType::f64));
  auto& k = prog.kernel("k", {j, i}, c0 * B(j, i));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  prog.bind("c0", 2.0);
  prog.set_initial([](std::int64_t, std::array<std::int64_t, 3>) { return 3.0; });
  prog.run(1, 1);
  EXPECT_DOUBLE_EQ(prog.value_at(1, {2, 2, 0}), 6.0);
}

TEST(Program, Fp32StorageWorks) {
  Program prog("f32");
  Var j = prog.var("j"), i = prog.var("i");
  GridRef B = prog.def_tensor_2d_timewin("B", 2, 1, ir::DataType::f32, 16, 16);
  auto& k = prog.kernel("k", {j, i}, ExprH(0.5) * B(j, i - 1) + ExprH(0.5) * B(j, i + 1));
  prog.def_stencil("st", B, 0.5 * k[prog.t() - 1] + 0.5 * k[prog.t() - 2]);
  prog.input(B, 3);
  // Paper §5.1: fp32 relative error < 1e-5.
  EXPECT_LT(prog.relative_error_vs_reference(1, 4), 1e-5);
}

}  // namespace
}  // namespace msc::dsl
