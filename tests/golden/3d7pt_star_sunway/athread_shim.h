/* athread_shim.h — pthread host simulation of the Athread API subset
 * used by MSC-generated Sunway code.  Build the master+slave pair with
 *   cc -DMSC_HOST_SIM -pthread ...
 * to run the Sunway target on a commodity host. */
#ifndef MSC_ATHREAD_SHIM_H
#define MSC_ATHREAD_SHIM_H

#include <pthread.h>
#include <string.h>

#define PE_MODE 0
#define __thread_local __thread

/* ---- CPE identity -------------------------------------------------- */
/* Shared across the master and slave translation units (the trampoline in
 * the master TU writes it, athread_get_id in the slave TU reads it), so it
 * must be one weak symbol rather than a per-TU static. */
__attribute__((weak)) __thread int msc_shim_id = -1;
static inline int athread_get_id(int core) {
  (void)core;
  return msc_shim_id;
}

/* ---- spawn / join: 64 pthreads stand in for the CPE cluster -------- */
#define MSC_SHIM_CPES 64

typedef void (*msc_shim_entry_t)(void *);
struct msc_shim_launch {
  msc_shim_entry_t entry;
  void *arg;
  int id;
};
static pthread_t msc_shim_threads[MSC_SHIM_CPES];
static struct msc_shim_launch msc_shim_launches[MSC_SHIM_CPES];

static void *msc_shim_trampoline(void *raw) {
  struct msc_shim_launch *launch = (struct msc_shim_launch *)raw;
  msc_shim_id = launch->id;
  launch->entry(launch->arg);
  return 0;
}

static inline void msc_shim_spawn(msc_shim_entry_t entry, void *arg) {
  for (int c = 0; c < MSC_SHIM_CPES; ++c) {
    msc_shim_launches[c].entry = entry;
    msc_shim_launches[c].arg = arg;
    msc_shim_launches[c].id = c;
    pthread_create(&msc_shim_threads[c], 0, msc_shim_trampoline, &msc_shim_launches[c]);
  }
}

static inline void athread_join(void) {
  for (int c = 0; c < MSC_SHIM_CPES; ++c) pthread_join(msc_shim_threads[c], 0);
}

static inline void athread_init(void) {}

/* The real toolchain prefixes slave symbols with `slave_`; the emitted
 * slave file provides that alias under MSC_HOST_SIM. */
#define athread_spawn(entry, arg) msc_shim_spawn(slave_##entry, arg)

/* ---- DMA intrinsics ------------------------------------------------ */
/* On hardware these move tiles between main memory and the 64 KB SPM;
 * the generated compute loops read main memory directly in host-sim mode,
 * so the shim only acknowledges the transfer. */
#define athread_get(mode, src, dst, bytes, reply, mask, stride, bsize) \
  do {                                                                 \
    (void)(src);                                                       \
    (void)(dst);                                                       \
    (void)(bytes);                                                     \
    (void)(mask);                                                      \
    (void)(stride);                                                    \
    (void)(bsize);                                                     \
    *(reply) = 1;                                                      \
  } while (0)
#define athread_put(mode, src, dst, bytes, reply, stride, bsize) \
  do {                                                           \
    (void)(src);                                                 \
    (void)(dst);                                                 \
    (void)(bytes);                                               \
    (void)(stride);                                              \
    (void)(bsize);                                               \
    *(reply) = 1;                                                \
  } while (0)

#endif /* MSC_ATHREAD_SHIM_H */
