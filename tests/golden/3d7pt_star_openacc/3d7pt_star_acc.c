/* 3d7pt_star — OpenACC C in the style of the paper's Sunway baseline */
#include <stdio.h>
#include <stdlib.h>
#include <stdint.h>

/* grid geometry (interior extents, halo, window, padded strides) */
#define N0 20L
#define N1 20L
#define N2 20L
#define HALO 1L
#define WIN 3
#define P0 (N0 + 2*HALO)
#define P1 (N1 + 2*HALO)
#define P2 (N2 + 2*HALO)
#define S0 (P1 * P2)
#define S1 (P2)
#define S2 1L
#define IDX(k, j, i) (((k) + HALO) * S0 + ((j) + HALO) * S1 + ((i) + HALO))
#define PADDED (P0 * P1 * P2)
#define SLOT(t) ((int)((((t) % WIN) + WIN) % WIN))

/* deterministic input seeding (replaces the paper's /data/rand.data);
 * interior cells only, in row-major order — bit-identical to the
 * values the MSC host executor seeds, so checksums are comparable. */
static uint64_t splitmix64(uint64_t *s) {
  uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

static void seed_grid(double *g, uint64_t seed) {
  uint64_t s = seed;
  for (long k = 0; k < N0; ++k) {
    for (long j = 0; j < N1; ++j) {
      for (long i = 0; i < N2; ++i) {
        g[IDX(k, j, i)] = (double)(-1.0 + 2.0 * ((double)(splitmix64(&s) >> 11) * 0x1.0p-53));
      }
    }
  }
}

static void sweep(double *const *g, long t) {
  double *restrict out = g[SLOT(t)];
  const double *restrict in_m1 = g[SLOT(t + (-1))];
  const double *restrict in_m2 = g[SLOT(t + (-2))];
  #pragma acc data copyin(in_m1[0:PADDED]) copyout(out[0:PADDED])
  #pragma acc parallel loop tile(*)
  for (long k = 0; k < N0; ++k) {
    for (long j = 0; j < N1; ++j) {
      for (long i = 0; i < N2; ++i) {
        out[IDX(k, j, i)] = 0.077142857142857152 * in_m1[IDX(k, j, i)]
        + -0.082653061224489802 * in_m1[IDX(k - 1, j, i)]
        + 0.088163265306122451 * in_m1[IDX(k + 1, j, i)]
        + -0.093673469387755101 * in_m1[IDX(k, j - 1, i)]
        + 0.099183673469387765 * in_m1[IDX(k, j + 1, i)]
        + -0.10469387755102043 * in_m1[IDX(k, j, i - 1)]
        + 0.11020408163265308 * in_m1[IDX(k, j, i + 1)]
        + 0.051428571428571435 * in_m2[IDX(k, j, i)]
        + -0.055102040816326539 * in_m2[IDX(k - 1, j, i)]
        + 0.058775510204081644 * in_m2[IDX(k + 1, j, i)]
        + -0.062448979591836741 * in_m2[IDX(k, j - 1, i)]
        + 0.066122448979591839 * in_m2[IDX(k, j + 1, i)]
        + -0.069795918367346957 * in_m2[IDX(k, j, i - 1)]
        + 0.073469387755102061 * in_m2[IDX(k, j, i + 1)];
      }
    }
  }
}

int main(int argc, char **argv) {
  long timesteps = argc > 1 ? atol(argv[1]) : 10;
  double *g[WIN];
  for (int w = 0; w < WIN; ++w) {
    g[w] = (double *)calloc((size_t)PADDED, sizeof(double));
    if (g[w] == NULL) { fprintf(stderr, "alloc failed\n"); return 1; }
    seed_grid(g[w], 42u + 0x51ed2701u * (unsigned)w);
  }

  for (long t = 1; t <= timesteps; ++t) {
    sweep(g, t);
  }

  /* interior checksum for cross-backend validation */
  double checksum = 0.0;
  double *final = g[SLOT(timesteps)];
  for (long k = 0; k < N0; ++k) {
    for (long j = 0; j < N1; ++j) {
      for (long i = 0; i < N2; ++i) {
        checksum += (double)final[IDX(k, j, i)];
      }
    }
  }
  printf("checksum %.17g\n", checksum);
  for (int w = 0; w < WIN; ++w) free(g[w]);
  return 0;
}
