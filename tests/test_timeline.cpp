// Per-rank phase timeline tests: interval arithmetic in critical_path(),
// the simulated-time spans of the Sunway CG simulator (they must sum to the
// simulated wall time), overlap attribution of the async halo exchange, and
// JSON validity of trace + timeline output under concurrent SimWorld rank
// threads.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/decompose.hpp"
#include "comm/halo_exchange.hpp"
#include "comm/simmpi.hpp"
#include "exec/grid.hpp"
#include "prof/timeline.hpp"
#include "prof/trace.hpp"
#include "sunway/cg_sim.hpp"
#include "workload/report.hpp"
#include "workload/stencils.hpp"

namespace msc::prof {
namespace {

using workload::Json;

/// Arms the global timeline for one test and restores it afterwards.
struct TimelineArmed {
  TimelineArmed() {
    global_timeline().clear();
    global_timeline().set_enabled(true);
  }
  ~TimelineArmed() {
    global_timeline().set_enabled(false);
    global_timeline().clear();
  }
};

TEST(Timeline, PhaseNamesAndCommClassification) {
  EXPECT_STREQ(phase_name(Phase::Pack), "pack");
  EXPECT_STREQ(phase_name(Phase::Compute), "compute");
  EXPECT_STREQ(phase_name(Phase::Dma), "dma");
  for (int p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    EXPECT_EQ(phase_is_comm(phase), phase != Phase::Compute) << phase_name(phase);
  }
}

TEST(Timeline, DisabledScopeRecordsNothing) {
  global_timeline().clear();
  global_timeline().set_enabled(false);
  { TimelineScope scope(0, Phase::Compute); }
  global_timeline().record(0, Phase::Pack, 0.0, 1.0);
  EXPECT_EQ(global_timeline().size(), 0u);
}

TEST(Timeline, ScopeRecordsWhenEnabled) {
  TimelineArmed armed;
  { TimelineScope scope(3, Phase::Unpack); }
  const auto spans = global_timeline().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].rank, 3);
  EXPECT_EQ(spans[0].phase, Phase::Unpack);
  EXPECT_GE(spans[0].seconds(), 0.0);
}

TEST(CriticalPath, SyntheticSpansAttributeExactly) {
  std::vector<PhaseSpan> spans = {
      {0, Phase::Compute, 0.0, 1.0},  // rank 0: compute 1.0 s
      {0, Phase::Send, 0.5, 1.6},     // rank 0: send 1.1 s, 0.5 s under compute
      {1, Phase::Compute, 0.0, 0.6},  // rank 1: pure compute, finishes early
  };
  const auto report = critical_path(spans);
  ASSERT_EQ(report.ranks.size(), 2u);

  const RankBreakdown& r0 = report.ranks[0];
  EXPECT_NEAR(r0.phase_seconds[static_cast<std::size_t>(Phase::Compute)], 1.0, 1e-12);
  EXPECT_NEAR(r0.phase_seconds[static_cast<std::size_t>(Phase::Send)], 1.1, 1e-12);
  EXPECT_NEAR(r0.busy_seconds, 1.6, 1e-12);         // union of [0,1] and [0.5,1.6]
  EXPECT_NEAR(r0.comm_seconds, 1.1, 1e-12);
  EXPECT_NEAR(r0.hidden_comm_seconds, 0.5, 1e-12);  // [0.5,1.0]

  EXPECT_EQ(report.critical_rank, 0);
  EXPECT_NEAR(report.wall_seconds, 1.6, 1e-12);
  EXPECT_EQ(report.bounding_phase, Phase::Send);
  EXPECT_NEAR(report.total_comm_seconds, 1.1, 1e-12);
  EXPECT_NEAR(report.overlap_efficiency, 0.5 / 1.1, 1e-12);
}

TEST(CriticalPath, FragmentedSpansUnionCorrectly) {
  // Overlapping and duplicate intervals must not double-count busy time.
  std::vector<PhaseSpan> spans = {
      {0, Phase::Compute, 0.0, 2.0},
      {0, Phase::Compute, 1.0, 3.0},
      {0, Phase::Compute, 1.5, 2.5},
      {0, Phase::Wait, 5.0, 6.0},  // disjoint gap: busy adds, not bridges
  };
  const auto report = critical_path(spans);
  EXPECT_NEAR(report.ranks[0].busy_seconds, 4.0, 1e-12);  // [0,3] + [5,6]
  EXPECT_NEAR(report.ranks[0].hidden_comm_seconds, 0.0, 1e-12);
  EXPECT_NEAR(report.overlap_efficiency, 0.0, 1e-12);
}

TEST(CriticalPath, EmptyRecordingIsSafe) {
  const auto report = critical_path({});
  EXPECT_TRUE(report.ranks.empty());
  EXPECT_EQ(report.critical_rank, -1);
  EXPECT_DOUBLE_EQ(report.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.overlap_efficiency, 0.0);
  EXPECT_FALSE(critical_path_summary(report).empty());
}

// ---- Sunway CG simulator spans (simulated time base) --------------------

template <bool DoubleBuffer>
sunway::CgSimResult run_sim_with_timeline(std::vector<PhaseSpan>& spans) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  workload::apply_msc_schedule(*prog, info, "sunway", {2, 8, 16});
  exec::GridStorage<double> g(prog->stencil().state());
  for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 7);
  TimelineArmed armed;
  const auto result =
      sunway::run_cg_sim(prog->stencil(), prog->primary_schedule(), g, 1, 3,
                         exec::Boundary::ZeroHalo, {}, machine::sunway_cg(), DoubleBuffer);
  spans = global_timeline().spans();
  return result;
}

TEST(CgSimTimeline, BlockingSpansSumToSimulatedWall) {
  std::vector<PhaseSpan> spans;
  const auto result = run_sim_with_timeline<false>(spans);
  ASSERT_FALSE(spans.empty());
  // A blocking pipeline serializes compute and DMA, so the phase spans
  // partition each step: their durations sum to the simulated wall time.
  double span_sum = 0.0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.rank, 0);  // the simulated core group
    EXPECT_TRUE(s.phase == Phase::Compute || s.phase == Phase::Dma) << phase_name(s.phase);
    span_sum += s.seconds();
  }
  EXPECT_NEAR(span_sum, result.seconds, 1e-12 + 1e-9 * result.seconds);

  // And the critical-path wall time (union measure) agrees too.
  const auto report = critical_path(spans);
  EXPECT_NEAR(report.wall_seconds, result.seconds, 1e-12 + 1e-9 * result.seconds);
  EXPECT_EQ(report.critical_rank, 0);
  EXPECT_NEAR(report.overlap_efficiency, 0.0, 1e-12);  // nothing hidden when blocking
}

TEST(CgSimTimeline, DoubleBufferedUnionEqualsSimulatedWall) {
  std::vector<PhaseSpan> spans;
  const auto result = run_sim_with_timeline<true>(spans);
  ASSERT_FALSE(spans.empty());
  // With double buffering compute hides under DMA (or vice versa): the span
  // *union* is the wall time while the plain sum exceeds it by the overlap.
  const auto report = critical_path(spans);
  EXPECT_NEAR(report.wall_seconds, result.seconds, 1e-12 + 1e-9 * result.seconds);
  double span_sum = 0.0;
  for (const auto& s : spans) span_sum += s.seconds();
  EXPECT_GE(span_sum, report.wall_seconds - 1e-12);
  // 3d7pt on the CG model is DMA-bound: compute genuinely hides under DMA.
  EXPECT_GT(report.overlap_efficiency, 0.0);
  EXPECT_LE(report.ranks[0].hidden_comm_seconds,
            std::min(result.compute_seconds, result.dma_seconds) + 1e-12);
}

// ---- distributed halo-exchange spans (wall-clock time base) -------------

TEST(CommTimeline, OverlappedRunHidesCommUnderCompute) {
  const auto& info = workload::benchmark("2d9pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {32, 32, 0});
  const auto& st = prog->stencil();
  comm::CartDecomp dec({2, 2}, {32, 32});
  comm::SimWorld world(4);

  TimelineArmed armed;
  world.run([&](comm::RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor("B", ir::DataType::f64,
                                           {dec.local_extent(r, 0), dec.local_extent(r, 1)},
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    for (int s = 0; s < local.slots(); ++s) local.fill_random(s, 7 + r);
    comm::run_distributed_overlapped(ctx, dec, st, local, 1, 5);
  });
  const auto spans = global_timeline().spans();
  const auto report = critical_path(spans);

  ASSERT_EQ(report.ranks.size(), 4u);  // every rank recorded spans
  bool saw_send = false, saw_pack = false, saw_compute = false;
  for (const auto& s : spans) {
    EXPECT_GE(s.rank, 0);
    EXPECT_LT(s.rank, 4);
    saw_send |= s.phase == Phase::Send;
    saw_pack |= s.phase == Phase::Pack;
    saw_compute |= s.phase == Phase::Compute;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_pack);
  EXPECT_TRUE(saw_compute);

  // The interior sweep runs inside the in-flight send window, so some comm
  // time must be attributed as hidden (this is paper Fig. 10's mechanism).
  EXPECT_GT(report.total_comm_seconds, 0.0);
  EXPECT_GT(report.hidden_comm_seconds, 0.0);
  EXPECT_GT(report.overlap_efficiency, 0.0);
  EXPECT_LE(report.overlap_efficiency, 1.0);
}

TEST(CommTimeline, ConcurrentRankThreadsProduceParseableJson) {
  // Rank threads record trace events and timeline spans concurrently; both
  // serializations must still parse with workload::Json (the stress behind
  // "trace JSON stays valid under concurrency").
  const auto& info = workload::benchmark("2d9pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {24, 24, 0});
  const auto& st = prog->stencil();
  comm::CartDecomp dec({2, 2}, {24, 24});
  comm::SimWorld world(4);

  auto& tr = global_trace();
  tr.clear();
  tr.set_enabled(true);
  TimelineArmed armed;
  world.run([&](comm::RankCtx& ctx) {
    const int r = ctx.rank();
    auto local_tensor = ir::make_sp_tensor("B", ir::DataType::f64,
                                           {dec.local_extent(r, 0), dec.local_extent(r, 1)},
                                           st.state()->halo(), st.state()->time_window());
    exec::GridStorage<double> local(local_tensor);
    for (int s = 0; s < local.slots(); ++s) local.fill_random(s, 3 + r);
    comm::run_distributed(ctx, dec, st, local, 1, 4);
  });
  tr.set_enabled(false);

  const Json trace_doc = Json::parse(tr.chrome_json().dump());
  EXPECT_GT(trace_doc.find("traceEvents")->elements().size(), 0u);
  tr.clear();

  const Json tl_doc = Json::parse(global_timeline().to_json().dump());
  EXPECT_EQ(tl_doc.find("schema")->as_string(), "msc-timeline-v1");
  const Json* tl_spans = tl_doc.find("spans");
  ASSERT_NE(tl_spans, nullptr);
  EXPECT_EQ(tl_spans->elements().size(), global_timeline().size());
  for (const auto& s : tl_spans->elements()) {
    EXPECT_GE(s.find("rank")->as_integer(), 0);
    EXPECT_LT(s.find("rank")->as_integer(), 4);
    EXPECT_GE(s.find("t1")->as_number(), s.find("t0")->as_number());
  }
  const Json* cp = tl_doc.find("critical_path");
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->find("ranks")->elements().size(), 4u);
}

}  // namespace
}  // namespace msc::prof
