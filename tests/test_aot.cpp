// Tests of the AOT dlopen host backend: term-count routing pins, the
// specialized emitter's full-unroll contract, bit-identity against the
// in-process sweep engine (including >16-term box stencils the sweep can
// only run through its generic path), the compile cache's hit/stale/evict
// behavior, dlclose discipline, and the graceful no-compiler fallback.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/case_gen.hpp"
#include "check/oracles.hpp"
#include "codegen/aot_kernel.hpp"
#include "dsl/program.hpp"
#include "exec/aot_backend.hpp"
#include "exec/executor.hpp"
#include "exec/grid.hpp"
#include "exec/sweep.hpp"
#include "support/shell.hpp"
#include "workload/stencils.hpp"

namespace msc::exec {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const char* name) {
  const auto dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++n;
  return n;
}

// A small double-precision workload program (the paper grids are far too
// large for unit tests).
std::unique_ptr<dsl::Program> small_benchmark(const std::string& name) {
  const auto& info = workload::benchmark(name);
  const std::array<std::int64_t, 3> small{24, 24, 24};
  return workload::make_program(info, ir::DataType::f64, small);
}

// ---- routing pins --------------------------------------------------------

TEST(AotRouting, SweepRoutePinsTermLimits) {
  // Regression pin for the sweep engine's routing thresholds: the fused
  // kernels stop at 16 term streams, the chunked row-buffer form at 32,
  // and everything beyond interprets the term list (generic).  The AOT
  // backend exists exactly for that third band.
  EXPECT_STREQ(sweep_route(1), "fused");
  EXPECT_STREQ(sweep_route(16), "fused");
  EXPECT_STREQ(sweep_route(17), "chunked");
  EXPECT_STREQ(sweep_route(32), "chunked");
  EXPECT_STREQ(sweep_route(33), "generic");
  EXPECT_STREQ(sweep_route(242), "generic");
}

TEST(AotRouting, BigBoxStencilExceedsEveryFixedTermKernel) {
  // 2d121pt_box: 121 spatial points x 2 time dependencies = 242 linear
  // terms — far past both sweep caps, so the in-process engine must route
  // it generic while the AOT module unrolls it fully.
  auto prog = small_benchmark("2d121pt_box");
  const auto lin = linearize_stencil(prog->stencil(), prog->bindings());
  ASSERT_TRUE(lin.has_value());
  EXPECT_EQ(lin->terms.size(), 242u);
  EXPECT_STREQ(sweep_route(lin->terms.size()), "generic");
}

TEST(AotRouting, AotOracleIsRegistered) {
  const auto& all = check::all_oracles();
  EXPECT_NE(std::find(all.begin(), all.end(), check::Oracle::Aot), all.end());
  const auto parsed = check::oracle_from_name("aot");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, check::Oracle::Aot);
  EXPECT_STREQ(check::oracle_name(check::Oracle::Aot), "aot");
  EXPECT_TRUE(check::oracle_needs_cc(check::Oracle::Aot));
}

// ---- emitter -------------------------------------------------------------

TEST(AotEmitter, UnrollsEveryTermWithConstantExtents) {
  auto prog = small_benchmark("2d121pt_box");
  const auto lin = linearize_stencil(prog->stencil(), prog->bindings());
  ASSERT_TRUE(lin.has_value());
  const auto spec =
      codegen::make_aot_spec(prog->stencil(), prog->primary_schedule(), *lin);
  const std::string src = codegen::gen_aot_kernel(spec);

  // One straight-line accumulation statement per linear term — no term
  // loop, no 16/32 cap.  (The banner comment also says "acc +=", so count
  // the load pattern only term statements contain.)
  EXPECT_EQ(count_occurrences(src, "* (double)in_m"), lin->terms.size());
  // The ABI surface is complete and the geometry is baked in as constants.
  EXPECT_NE(src.find("msc_aot_run"), std::string::npos);
  EXPECT_NE(src.find("msc_aot_padded_points"), std::string::npos);
  EXPECT_NE(src.find("msc_aot_window"), std::string::npos);
  EXPECT_NE(src.find("msc_aot_abi"), std::string::npos);
  EXPECT_NE(src.find("c0 < 24"), std::string::npos) << "interior extent must be a literal";
}

TEST(AotEmitter, SpecPicksUpTimeTileDepth) {
  auto prog = small_benchmark("3d7pt_star");
  prog->primary_kernel().time_tile(4);
  const auto lin = linearize_stencil(prog->stencil(), prog->bindings());
  ASSERT_TRUE(lin.has_value());
  const auto spec =
      codegen::make_aot_spec(prog->stencil(), prog->primary_schedule(), *lin);
  EXPECT_EQ(spec.time_depth, 4);
}

// ---- bit-identity against the sweep engine -------------------------------

// Runs the sweep engine and the AOT module from identically seeded twins
// and requires bit-identical interiors at the final step.
void expect_aot_bit_identical(const std::string& bench, std::int64_t steps,
                              const std::string& cache_dir) {
  SCOPED_TRACE(bench);
  auto prog = small_benchmark(bench);
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();

  GridStorage<double> gs(st.state());
  GridStorage<double> ga(st.state());
  for (int s = 0; s < gs.slots(); ++s) {
    gs.fill_random(s, 42 + static_cast<std::uint64_t>(s));
    ga.fill_random(s, 42 + static_cast<std::uint64_t>(s));
  }
  run_scheduled(st, sched, gs, 1, steps, Boundary::ZeroHalo, prog->bindings());

  AotOptions opts;
  opts.cache_dir = cache_dir;
  AotExecInfo info;
  run_scheduled_aot(st, sched, ga, 1, steps, Boundary::ZeroHalo, prog->bindings(),
                    nullptr, &info, opts);
  ASSERT_TRUE(info.aot) << "unexpected fallback: " << info.fallback_reason;

  const int fs_slot = gs.slot_for_time(steps);
  const auto vs = gs.interior_values(fs_slot);
  const auto va = ga.interior_values(fs_slot);
  ASSERT_EQ(vs.size(), va.size());
  for (std::size_t p = 0; p < vs.size(); ++p)
    ASSERT_EQ(vs[p], va[p]) << bench << ": first divergence at flat index " << p;
}

TEST(AotBackend, BitIdenticalToSweepAcrossRoutingBands) {
  if (!host_cc_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  const std::string dir = scratch_dir("msc_aot_test_bits");
  // One benchmark per sweep routing band: fused (<=16 terms), chunked
  // (<=32) and generic (the 242-term box the AOT path is for).
  expect_aot_bit_identical("3d7pt_star", 4, dir);    // 14 terms  -> fused
  expect_aot_bit_identical("3d13pt_star", 4, dir);   // 26 terms  -> chunked
  expect_aot_bit_identical("2d121pt_box", 3, dir);   // 242 terms -> generic
}

TEST(AotBackend, BitIdenticalWithTimeTiledSchedule) {
  if (!host_cc_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  const std::string dir = scratch_dir("msc_aot_test_tt");
  auto prog = small_benchmark("2d9pt_box");
  prog->primary_kernel().time_tile(3);
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();
  GridStorage<double> gs(st.state());
  GridStorage<double> ga(st.state());
  for (int s = 0; s < gs.slots(); ++s) {
    gs.fill_random(s, 7 + static_cast<std::uint64_t>(s));
    ga.fill_random(s, 7 + static_cast<std::uint64_t>(s));
  }
  // 7 steps: two full depth-3 blocks plus a remainder step.
  run_scheduled(st, sched, gs, 1, 7, Boundary::ZeroHalo, prog->bindings());
  AotOptions opts;
  opts.cache_dir = dir;
  AotExecInfo info;
  run_scheduled_aot(st, sched, ga, 1, 7, Boundary::ZeroHalo, prog->bindings(), nullptr,
                    &info, opts);
  ASSERT_TRUE(info.aot) << info.fallback_reason;
  const int fs_slot = gs.slot_for_time(7);
  const auto vs = gs.interior_values(fs_slot);
  const auto va = ga.interior_values(fs_slot);
  for (std::size_t p = 0; p < vs.size(); ++p) ASSERT_EQ(vs[p], va[p]) << p;
}

TEST(AotBackend, ProgramRunDispatchesThroughBackendSelector) {
  if (!host_cc_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  auto sweep_prog = small_benchmark("2d9pt_star");
  auto aot_prog = small_benchmark("2d9pt_star");
  aot_prog->set_backend(dsl::HostBackend::Aot);
  sweep_prog->input(dsl::GridRef(sweep_prog->stencil().state()), 42);
  aot_prog->input(dsl::GridRef(aot_prog->stencil().state()), 42);
  sweep_prog->run(1, 5);
  aot_prog->run(1, 5);
  ASSERT_TRUE(aot_prog->last_aot_info().aot)
      << aot_prog->last_aot_info().fallback_reason;
  EXPECT_FALSE(aot_prog->last_aot_info().plan_hash.empty());
  for (std::int64_t j = 0; j < 24; ++j)
    for (std::int64_t i = 0; i < 24; ++i)
      ASSERT_EQ(sweep_prog->value_at(5, {j, i, 0}), aot_prog->value_at(5, {j, i, 0}));
}

// ---- compile cache lifecycle ---------------------------------------------

TEST(AotBackend, CacheHitsInMemoryOnDiskAndAcrossPlans) {
  if (!host_cc_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  const std::string dir = scratch_dir("msc_aot_test_cache");
  auto prog = small_benchmark("3d7pt_star");
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();
  AotOptions opts;
  opts.cache_dir = dir;

  // Cold: compiles and dlopens.
  AotExecInfo first;
  std::string why;
  auto mod1 = detail::load_aot_module(st, sched, prog->bindings(), opts, &first, &why);
  ASSERT_NE(mod1, nullptr) << why;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.plan_hash.size(), 16u);
  EXPECT_TRUE(fs::exists(first.module_path));

  // Same plan while the module is live: in-memory hit, same handle.
  AotExecInfo mem;
  auto mod2 = detail::load_aot_module(st, sched, prog->bindings(), opts, &mem, &why);
  ASSERT_EQ(mod2, mod1);
  EXPECT_TRUE(mem.cache_hit);
  EXPECT_EQ(mem.plan_hash, first.plan_hash);

  // Release every handle, reload: on-disk hit (no recompile), fresh dlopen.
  mod1.reset();
  mod2.reset();
  AotExecInfo disk;
  auto mod3 = detail::load_aot_module(st, sched, prog->bindings(), opts, &disk, &why);
  ASSERT_NE(mod3, nullptr) << why;
  EXPECT_TRUE(disk.cache_hit);
  EXPECT_EQ(disk.plan_hash, first.plan_hash);

  // A different plan (different grid -> different baked extents) must land
  // on a different key and compile its own object.
  auto other = workload::make_program(workload::benchmark("3d7pt_star"), ir::DataType::f64,
                                      {20, 20, 20});
  AotExecInfo o;
  auto mod4 = detail::load_aot_module(other->stencil(), other->primary_schedule(),
                                      other->bindings(), opts, &o, &why);
  ASSERT_NE(mod4, nullptr) << why;
  EXPECT_FALSE(o.cache_hit);
  EXPECT_NE(o.plan_hash, first.plan_hash);
}

TEST(AotBackend, StaleCachedObjectIsEvictedAndRebuilt) {
  if (!host_cc_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  const std::string dir = scratch_dir("msc_aot_test_stale");
  auto prog = small_benchmark("2d9pt_star");
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();
  AotOptions opts;
  opts.cache_dir = dir;

  AotExecInfo first;
  std::string why;
  auto mod = detail::load_aot_module(st, sched, prog->bindings(), opts, &first, &why);
  ASSERT_NE(mod, nullptr) << why;
  const std::string so = first.module_path;
  mod.reset();  // release the in-memory handle so the disk path is exercised

  {
    // Corrupt the cached object in place (a truncated/garbage .so stands in
    // for "produced by an older emitter / interrupted write").
    std::ofstream out(so, std::ios::trunc | std::ios::binary);
    out << "not an ELF object";
  }

  AotExecInfo rebuilt;
  auto mod2 = detail::load_aot_module(st, sched, prog->bindings(), opts, &rebuilt, &why);
  ASSERT_NE(mod2, nullptr) << "stale object must be evicted and rebuilt: " << why;
  EXPECT_FALSE(rebuilt.cache_hit) << "a corrupt cache entry must not count as a hit";
  EXPECT_EQ(rebuilt.plan_hash, first.plan_hash);

  // And the rebuilt module still computes the right thing.
  GridStorage<double> gs(st.state());
  GridStorage<double> ga(st.state());
  for (int s = 0; s < gs.slots(); ++s) {
    gs.fill_random(s, 9 + static_cast<std::uint64_t>(s));
    ga.fill_random(s, 9 + static_cast<std::uint64_t>(s));
  }
  run_scheduled(st, sched, gs, 1, 3, Boundary::ZeroHalo, prog->bindings());
  mod2.reset();
  AotExecInfo info;
  run_scheduled_aot(st, sched, ga, 1, 3, Boundary::ZeroHalo, prog->bindings(), nullptr,
                    &info, opts);
  ASSERT_TRUE(info.aot) << info.fallback_reason;
  const int fs_slot = gs.slot_for_time(3);
  EXPECT_EQ(gs.interior_values(fs_slot), ga.interior_values(fs_slot));
}

TEST(AotBackend, ForceRecompileBypassesBothCaches) {
  if (!host_cc_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  const std::string dir = scratch_dir("msc_aot_test_force");
  auto prog = small_benchmark("2d9pt_star");
  AotOptions opts;
  opts.cache_dir = dir;
  std::string why;
  AotExecInfo a;
  auto mod = detail::load_aot_module(prog->stencil(), prog->primary_schedule(),
                                     prog->bindings(), opts, &a, &why);
  ASSERT_NE(mod, nullptr) << why;
  opts.force_recompile = true;
  AotExecInfo b;
  auto mod2 = detail::load_aot_module(prog->stencil(), prog->primary_schedule(),
                                      prog->bindings(), opts, &b, &why);
  ASSERT_NE(mod2, nullptr) << why;
  EXPECT_FALSE(b.cache_hit);
  EXPECT_NE(mod2, mod);
}

TEST(AotBackend, ModulesAreDlclosedAtTeardown) {
  if (!host_cc_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  const std::string dir = scratch_dir("msc_aot_test_close");
  const int before = detail::AotModule::live();
  {
    auto prog = small_benchmark("2d9pt_star");
    GridStorage<double> g(prog->stencil().state());
    for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 1);
    AotOptions opts;
    opts.cache_dir = dir;
    AotExecInfo info;
    run_scheduled_aot(prog->stencil(), prog->primary_schedule(), g, 1, 2,
                      Boundary::ZeroHalo, prog->bindings(), nullptr, &info, opts);
    ASSERT_TRUE(info.aot) << info.fallback_reason;
  }
  // run_scheduled_aot holds the module only for the dispatch; nothing else
  // pins it, so the handle count must return to where it started.
  EXPECT_EQ(detail::AotModule::live(), before);
}

// ---- fallback + oracle behavior ------------------------------------------

TEST(AotBackend, FallsBackToSweepWithoutCompiler) {
  auto prog = small_benchmark("2d9pt_star");
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();
  GridStorage<double> gs(st.state());
  GridStorage<double> ga(st.state());
  for (int s = 0; s < gs.slots(); ++s) {
    gs.fill_random(s, 3 + static_cast<std::uint64_t>(s));
    ga.fill_random(s, 3 + static_cast<std::uint64_t>(s));
  }
  run_scheduled(st, sched, gs, 1, 4, Boundary::ZeroHalo, prog->bindings());

  AotOptions opts;
  opts.cc = "msc-no-such-compiler";
  AotExecInfo info;
  run_scheduled_aot(st, sched, ga, 1, 4, Boundary::ZeroHalo, prog->bindings(), nullptr,
                    &info, opts);
  EXPECT_FALSE(info.aot);
  EXPECT_NE(info.fallback_reason.find("no host C compiler"), std::string::npos)
      << info.fallback_reason;
  // The fallback still computes the right answer through run_scheduled.
  const int fs_slot = gs.slot_for_time(4);
  EXPECT_EQ(gs.interior_values(fs_slot), ga.interior_values(fs_slot));
}

TEST(AotBackend, OracleSkipsWithoutCompilerAndFailsOnFallback) {
  const auto spec = check::random_case(1);
  check::OracleOptions opts;
  opts.cc = "msc-no-such-compiler";
  const auto run = check::run_oracle(spec, check::Oracle::Aot, opts);
  EXPECT_TRUE(run.skipped);
  EXPECT_FALSE(run.ok);
}

TEST(AotBackend, OracleMatchesReferenceBitwise) {
  if (!check::compiler_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  check::OracleOptions opts;
  opts.work_dir = scratch_dir("msc_aot_test_oracle");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto spec = check::random_case(seed);
    const auto ref = check::run_oracle(spec, check::Oracle::Reference, opts);
    ASSERT_TRUE(ref.ok) << ref.note;
    const auto aot = check::run_oracle(spec, check::Oracle::Aot, opts);
    ASSERT_TRUE(aot.ok) << "seed " << seed << ": " << aot.note;
    const auto cmp = check::compare_runs(ref, aot, /*max_ulps=*/0);
    EXPECT_TRUE(cmp.match) << "seed " << seed << ": " << cmp.detail;
  }
}

}  // namespace
}  // namespace msc::exec
