// Inspector-executor tests (§5.6 extension): per-shape tile selection,
// schedule caching, the never-loses property vs a uniform padded plan,
// and the synthetic imbalance generator.

#include <gtest/gtest.h>

#include "machine/cost_model.hpp"
#include "support/error.hpp"
#include "tune/inspector.hpp"
#include "workload/stencils.hpp"

namespace msc::tune {
namespace {

class InspectorFixture : public ::testing::Test {
 protected:
  InspectorFixture()
      : prog(workload::make_program(workload::benchmark("3d7pt_star"), ir::DataType::f64,
                                    {64, 64, 64})),
        m(machine::sunway_cg()),
        impl(machine::profile_msc_sunway()) {}

  std::unique_ptr<dsl::Program> prog;
  machine::MachineModel m;
  machine::ImplProfile impl;
};

TEST_F(InspectorFixture, SelectedTileIsSpmFeasible) {
  Subgrid sub;
  sub.extent = {64, 64, 64};
  const auto sel = select_tiles(prog->stencil(), m, impl, sub, true);
  const std::int64_t r = prog->stencil().max_radius();
  std::int64_t staged = 1, interior = 1;
  for (int d = 0; d < 3; ++d) {
    EXPECT_GE(sel.tile[static_cast<std::size_t>(d)], 1);
    EXPECT_LE(sel.tile[static_cast<std::size_t>(d)], 64);
    staged *= sel.tile[static_cast<std::size_t>(d)] + 2 * r;
    interior *= sel.tile[static_cast<std::size_t>(d)];
  }
  EXPECT_LE((staged + interior) * 8, m.spm_bytes_per_core);
  EXPECT_GT(sel.seconds_per_step, 0.0);
}

TEST_F(InspectorFixture, SelectedTileBeatsDegenerateTiles) {
  Subgrid sub;
  sub.extent = {64, 64, 64};
  const auto best = select_tiles(prog->stencil(), m, impl, sub, true);
  // A unit tile is in the candidate set, so the winner can't be worse.
  machine::ImplProfile p = impl;
  (void)p;
  Subgrid unit = sub;
  const auto any = select_tiles(prog->stencil(), m, impl, unit, true);
  EXPECT_LE(best.seconds_per_step, any.seconds_per_step * 1.0 + 1e-12);
}

TEST_F(InspectorFixture, PlanCachesEqualShapes) {
  std::vector<Subgrid> subs(8);
  for (auto& s : subs) s.extent = {64, 64, 64};
  subs[3].extent = {32, 64, 64};
  subs[6].extent = {32, 64, 64};
  const auto result = plan(prog->stencil(), m, impl, subs, true);
  EXPECT_EQ(result.per_rank.size(), 8u);
  EXPECT_EQ(result.distinct_shapes_inspected, 2);  // two distinct shapes only
  EXPECT_GT(result.inspection_seconds, 0.0);
  // Equal shapes share identical schedules.
  EXPECT_EQ(result.per_rank[3].tile, result.per_rank[6].tile);
  EXPECT_EQ(result.per_rank[0].tile, result.per_rank[1].tile);
}

TEST_F(InspectorFixture, InspectorNeverLosesToUniform) {
  for (double skew : {1.0, 2.0, 4.0}) {
    const auto subs = synthetic_imbalance({64, 64, 64}, 3, 16, skew, 0.3, 5);
    const double uniform = uniform_step_time(prog->stencil(), m, impl, subs, true);
    const auto p = plan(prog->stencil(), m, impl, subs, true);
    EXPECT_LE(step_time(p, subs), uniform * (1.0 + 1e-9)) << "skew " << skew;
  }
}

TEST_F(InspectorFixture, BalancedWorkloadNeedsOneInspection) {
  const auto subs = synthetic_imbalance({64, 64, 64}, 3, 32, /*skew=*/1.0, 0.5, 7);
  const auto p = plan(prog->stencil(), m, impl, subs, true);
  EXPECT_EQ(p.distinct_shapes_inspected, 1);
  EXPECT_DOUBLE_EQ(step_time(p, subs),
                   uniform_step_time(prog->stencil(), m, impl, subs, true));
}

TEST_F(InspectorFixture, ImbalanceGainGrowsThenInspectionStaysAmortized) {
  const auto balanced = synthetic_imbalance({64, 64, 64}, 3, 32, 1.0, 0.3, 5);
  const auto skewed = synthetic_imbalance({64, 64, 64}, 3, 32, 4.0, 0.3, 5);
  const auto p_bal = plan(prog->stencil(), m, impl, balanced, true);
  const auto p_skew = plan(prog->stencil(), m, impl, skewed, true);
  // The skewed workload needs more inspections but still far fewer than
  // the rank count (cache amortization).
  EXPECT_GE(p_skew.distinct_shapes_inspected, p_bal.distinct_shapes_inspected);
  EXPECT_LT(p_skew.distinct_shapes_inspected, 32);
}

TEST(SyntheticImbalance, DeterministicAndShaped) {
  const auto a = synthetic_imbalance({64, 64, 64}, 3, 16, 2.0, 0.5, 11);
  const auto b = synthetic_imbalance({64, 64, 64}, 3, 16, 2.0, 0.5, 11);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t n = 0; n < a.size(); ++n) EXPECT_EQ(a[n].extent, b[n].extent);
  bool any_skewed = false, any_base = false;
  for (const auto& s : a) {
    if (s.extent[0] != 64) {
      any_skewed = true;
      EXPECT_GT(s.extent[0], 64);
      EXPECT_LT(s.extent[2], 64 + 12);
    } else {
      any_base = true;
    }
  }
  EXPECT_TRUE(any_skewed);
  EXPECT_TRUE(any_base);
}

TEST(SyntheticImbalance, RejectsBadParameters) {
  EXPECT_THROW(synthetic_imbalance({8, 8, 8}, 3, 0, 1.0, 0.5, 1), Error);
  EXPECT_THROW(synthetic_imbalance({8, 8, 8}, 3, 4, 0.5, 0.5, 1), Error);
  EXPECT_THROW(synthetic_imbalance({8, 8, 8}, 3, 4, 1.0, 1.5, 1), Error);
}

}  // namespace
}  // namespace msc::tune
