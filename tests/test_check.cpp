// Tests of the conformance harness itself (src/check): case generation,
// oracle agreement, fault detection, shrinking and the JSON report.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/case_gen.hpp"
#include "check/conform.hpp"
#include "check/oracles.hpp"
#include "check/shrink.hpp"
#include "workload/report.hpp"

namespace msc::check {
namespace {

std::string scratch_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(CaseGen, DeterministicFromSeed) {
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    const CaseSpec a = random_case(seed);
    const CaseSpec b = random_case(seed);
    EXPECT_EQ(a.ndim, b.ndim);
    EXPECT_EQ(a.extent, b.extent);
    EXPECT_EQ(a.radius, b.radius);
    EXPECT_EQ(a.timesteps, b.timesteps);
    EXPECT_EQ(a.neighbors.size(), b.neighbors.size());
    for (std::size_t n = 0; n < a.neighbors.size(); ++n) {
      EXPECT_EQ(a.neighbors[n].offset, b.neighbors[n].offset);
      EXPECT_EQ(a.neighbors[n].coeff, b.neighbors[n].coeff);
    }
    EXPECT_EQ(a.tile, b.tile);
    EXPECT_EQ(a.parallel_threads, b.parallel_threads);
    EXPECT_EQ(a.ranks, b.ranks);
  }
}

TEST(CaseGen, CoversBothRanksAndSchedules) {
  bool saw_2d = false, saw_3d = false, saw_tiled = false, saw_untiled = false,
       saw_parallel = false, saw_multirank = false, saw_spm = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const CaseSpec s = random_case(seed);
    (s.ndim == 2 ? saw_2d : saw_3d) = true;
    (s.tiled() ? saw_tiled : saw_untiled) = true;
    saw_parallel |= s.parallel_threads > 0;
    saw_multirank |= s.rank_count() > 1;
    saw_spm |= s.spm_pipeline;
  }
  EXPECT_TRUE(saw_2d);
  EXPECT_TRUE(saw_3d);
  EXPECT_TRUE(saw_tiled);
  EXPECT_TRUE(saw_untiled);
  EXPECT_TRUE(saw_parallel);
  EXPECT_TRUE(saw_multirank);
  EXPECT_TRUE(saw_spm);
}

TEST(CaseGen, EverySpecBuildsAValidProgram) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const CaseSpec s = random_case(seed);
    auto prog = build_program(s);
    ASSERT_TRUE(prog->has_stencil()) << describe(s);
    EXPECT_EQ(prog->stencil().state()->ndim(), s.ndim);
    EXPECT_EQ(prog->stencil().time_window(), s.time_deps + 1);
    EXPECT_GE(prog->stencil().state()->halo(), prog->stencil().max_radius());
  }
}

TEST(Oracles, UlpDistance) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1);
  EXPECT_EQ(ulp_distance(std::nextafter(1.0, 0.0), std::nextafter(1.0, 2.0)), 2);
  EXPECT_GT(ulp_distance(1.0, 1.0 + 1e-9), 1000);
}

TEST(Oracles, InProcessOraclesMatchReferenceBitwise) {
  // run_scheduled and the CG simulator keep the reference accumulation
  // order, so agreement is exact, not just within tolerance.
  OracleOptions opts;
  opts.work_dir = scratch_dir("msc_check_inproc");
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CaseSpec spec = random_case(seed);
    const OracleRun ref = run_oracle(spec, Oracle::Reference, opts);
    ASSERT_TRUE(ref.ok) << describe(spec) << ref.note;
    for (Oracle o : {Oracle::Scheduled, Oracle::SunwaySim, Oracle::SimMpi}) {
      const OracleRun run = run_oracle(spec, o, opts);
      if (run.skipped) continue;
      ASSERT_TRUE(run.ok) << oracle_name(o) << " seed " << seed << ": " << run.note;
      const Comparison cmp = compare_runs(ref, run, /*max_ulps=*/0);
      EXPECT_TRUE(cmp.match) << oracle_name(o) << " seed " << seed << ": " << cmp.detail
                             << "\n" << describe(spec);
    }
  }
}

TEST(Oracles, CompiledBackendsMatchReference) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  OracleOptions opts;
  opts.work_dir = scratch_dir("msc_check_cc");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const CaseSpec spec = random_case(seed);
    const OracleRun ref = run_oracle(spec, Oracle::Reference, opts);
    ASSERT_TRUE(ref.ok);
    for (Oracle o : {Oracle::GenC, Oracle::GenOpenMp, Oracle::AthreadSim}) {
      const OracleRun run = run_oracle(spec, o, opts);
      ASSERT_FALSE(run.skipped) << oracle_name(o) << ": " << run.note;
      ASSERT_TRUE(run.ok) << oracle_name(o) << " seed " << seed << ": " << run.note;
      const Comparison cmp = compare_runs(ref, run, /*max_ulps=*/16);
      EXPECT_TRUE(cmp.match) << oracle_name(o) << " seed " << seed << ": " << cmp.detail;
    }
  }
}

// A stand-in "cc" driver: accepts the --version probe, then instead of
// compiling writes `exe_body` to the -o target and marks it executable.
// Lets the tests dictate exactly how the "compiled" program behaves.  The
// script's own name contains a space, so the cc path quoting is pinned too.
std::string write_fake_cc(const std::string& dir, const std::string& exe_body) {
  const auto path = std::filesystem::path(dir) / "fake cc.sh";
  {
    std::ofstream out(path);
    out << "#!/bin/sh\n"
        << "[ \"$1\" = \"--version\" ] && exit 0\n"
        << "out=\"\"; prev=\"\"\n"
        << "for a in \"$@\"; do\n"
        << "  [ \"$prev\" = \"-o\" ] && out=\"$a\"\n"
        << "  prev=\"$a\"\n"
        << "done\n"
        << "cat > \"$out\" <<'MSC_EOF'\n"
        << exe_body
        << "MSC_EOF\n"
        << "chmod +x \"$out\"\n";
  }
  std::filesystem::permissions(path,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::group_exec,
                               std::filesystem::perm_options::add);
  return path.string();
}

TEST(Oracles, CompiledOracleSurvivesWorkdirWithSpaces) {
  // Regression: the compile/run command lines used to splice raw paths, so
  // a scratch directory containing a space broke every popen'd backend.
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  OracleOptions opts;
  opts.work_dir = scratch_dir("msc check spaced dir");
  const CaseSpec spec = random_case(2);
  const OracleRun ref = run_oracle(spec, Oracle::Reference, opts);
  ASSERT_TRUE(ref.ok);
  const OracleRun c = run_oracle(spec, Oracle::GenC, opts);
  ASSERT_FALSE(c.skipped) << c.note;
  ASSERT_TRUE(c.ok) << c.note;
  EXPECT_TRUE(compare_runs(ref, c, 16).match);
}

TEST(Oracles, RunStageCrashIsReportedAsSignalDeath) {
  // Regression: the oracle's note used to conflate "the generated program
  // crashed" with "it exited nonzero" (and with compile failures, since
  // only the compile stage redirected stderr).  A signal death must be
  // named as such.
  const std::string dir = scratch_dir("msc_check_fakecc_crash");
  OracleOptions opts;
  opts.work_dir = dir;
  opts.cc = write_fake_cc(dir,
                          "#!/bin/sh\n"
                          "echo deliberate crash >&2\n"
                          "kill -KILL $$\n");
  const OracleRun run = run_oracle(random_case(1), Oracle::GenC, opts);
  EXPECT_FALSE(run.ok);
  EXPECT_FALSE(run.skipped);
  EXPECT_NE(run.note.find("run crashed (signal 9)"), std::string::npos) << run.note;
  EXPECT_NE(run.note.find("deliberate crash"), std::string::npos)
      << "run-stage stderr must be captured: " << run.note;
}

TEST(Oracles, RunStageExitFailureReportsStatusAndStderr) {
  const std::string dir = scratch_dir("msc_check_fakecc_exit");
  OracleOptions opts;
  opts.work_dir = dir;
  opts.cc = write_fake_cc(dir,
                          "#!/bin/sh\n"
                          "echo boom: bad geometry >&2\n"
                          "exit 7\n");
  const OracleRun run = run_oracle(random_case(1), Oracle::GenC, opts);
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.note.find("run failed (exit 7)"), std::string::npos) << run.note;
  EXPECT_NE(run.note.find("boom: bad geometry"), std::string::npos) << run.note;
}

TEST(Oracles, CompileFailureNoteNamesTheCompileStage) {
  const std::string dir = scratch_dir("msc_check_fakecc_nocompile");
  OracleOptions opts;
  opts.work_dir = dir;
  // Accepts the probe but fails every real compile.
  const auto path = std::filesystem::path(dir) / "no cc.sh";
  {
    std::ofstream out(path);
    out << "#!/bin/sh\n"
        << "[ \"$1\" = \"--version\" ] && exit 0\n"
        << "echo 'fatal: synthetic compiler wall'\n"
        << "exit 1\n";
  }
  std::filesystem::permissions(path, std::filesystem::perms::owner_all,
                               std::filesystem::perm_options::add);
  opts.cc = path.string();
  const OracleRun run = run_oracle(random_case(1), Oracle::GenC, opts);
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.note.find("compile failed (exit 1)"), std::string::npos) << run.note;
  EXPECT_NE(run.note.find("synthetic compiler wall"), std::string::npos) << run.note;
}

TEST(Oracles, InjectedCoefficientErrorIsCaught) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler ('cc') on PATH";
  OracleOptions opts;
  opts.work_dir = scratch_dir("msc_check_fault");
  opts.coeff_perturb = 1e-3;
  const CaseSpec spec = random_case(1);
  const OracleRun ref = run_oracle(spec, Oracle::Reference, opts);
  const OracleRun bad = run_oracle(spec, Oracle::GenC, opts);
  ASSERT_TRUE(ref.ok && bad.ok);
  EXPECT_FALSE(compare_runs(ref, bad, 16).match)
      << "a 1e-3 coefficient perturbation must not pass conformance";
}

TEST(Shrink, ProducesMinimalReproducer) {
  // Failure predicate: the case still reads neighbor offset (0, 1[, 0]).
  // The shrinker should strip everything else (schedule, extra terms,
  // extents, timesteps) while keeping that term.
  const CaseSpec start = random_case(3);
  const auto reads_east = [](const CaseSpec& s) {
    for (const auto& n : s.neighbors)
      if (n.offset[static_cast<std::size_t>(s.ndim - 1)] == 1) return true;
    return false;
  };
  ASSERT_TRUE(reads_east(start)) << "seed 3 must read an eastern neighbor";
  const ShrinkResult r = shrink_case(start, reads_east);
  EXPECT_TRUE(reads_east(r.spec));
  EXPECT_GT(r.accepted, 0);
  EXPECT_LE(r.spec.timesteps, start.timesteps);
  EXPECT_LE(r.spec.neighbors.size(), start.neighbors.size());
  EXPECT_FALSE(r.spec.tiled());
  EXPECT_EQ(r.spec.parallel_threads, 0);
  EXPECT_EQ(r.spec.rank_count(), 1);
  for (int d = 0; d < r.spec.ndim; ++d)
    EXPECT_LE(r.spec.extent[static_cast<std::size_t>(d)],
              start.extent[static_cast<std::size_t>(d)]);
}

TEST(Shrink, KeepsSpecsValidForEveryOracle) {
  // Whatever the shrinker produces must still build and run.
  const CaseSpec start = random_case(5);
  const ShrinkResult r = shrink_case(start, [](const CaseSpec&) { return true; });
  OracleOptions opts;
  const OracleRun ref = run_oracle(r.spec, Oracle::Reference, opts);
  EXPECT_TRUE(ref.ok) << describe(r.spec) << ref.note;
  const OracleRun mpi = run_oracle(r.spec, Oracle::SimMpi, opts);
  EXPECT_TRUE(mpi.ok || mpi.skipped) << describe(r.spec) << mpi.note;
}

TEST(Conform, SweepPassesAndWritesReport) {
  ConformOptions opts;
  opts.cases = 4;
  opts.seed = 11;
  opts.work_dir = scratch_dir("msc_check_sweep");
  opts.report_path = opts.work_dir + "/conform_report.json";
  // In-process oracles only: keep this unit test independent of cc.
  opts.oracles = {Oracle::Scheduled, Oracle::SunwaySim, Oracle::SimMpi};
  const ConformReport report = run_conformance(opts);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases_passed, 4);
  EXPECT_TRUE(report.reproducers.empty());

  std::ifstream in(opts.report_path);
  ASSERT_TRUE(in.good());
  std::ostringstream s;
  s << in.rdbuf();
  const std::string json = s.str();
  EXPECT_NE(json.find("\"tool\": \"msc-conform\""), std::string::npos);
  EXPECT_NE(json.find("\"passed\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"scheduled\""), std::string::npos);
  EXPECT_NE(json.find("\"simmpi\""), std::string::npos);
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);
}

TEST(Conform, ExitCodePolicy) {
  // Regression: msc-conform used to exit 0 even when oracles failed, so CI
  // never gated on conformance regressions.  The policy is: failures exit
  // nonzero — unless fault injection was requested, where a detected fault
  // is the expected self-test outcome and an undetected one must gate.
  ConformOptions normal;
  ConformOptions injecting;
  injecting.coeff_perturb = 1e-3;

  ConformReport all_passed;
  all_passed.cases_passed = 4;
  ConformReport one_failed;
  one_failed.cases_passed = 3;
  one_failed.cases_failed = 1;

  EXPECT_EQ(conform_exit_code(normal, all_passed), 0);
  EXPECT_EQ(conform_exit_code(normal, one_failed), 1);   // real regression gates
  EXPECT_EQ(conform_exit_code(injecting, one_failed), 0);  // fault detected: self-test ok
  EXPECT_EQ(conform_exit_code(injecting, all_passed), 1);  // vacuous pass must gate
}

TEST(Report, JsonEscapingAndStructure) {
  auto j = workload::Json::object();
  j["name"] = workload::Json::string("line\none \"two\"");
  j["count"] = workload::Json::integer(3);
  auto arr = workload::Json::array();
  arr.push_back(workload::Json::number(0.5));
  arr.push_back(workload::Json::boolean(true));
  j["items"] = std::move(arr);
  const std::string text = j.dump();
  EXPECT_NE(text.find("\"line\\none \\\"two\\\"\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
  EXPECT_NE(text.find("true"), std::string::npos);
}

}  // namespace
}  // namespace msc::check
