// Robustness-spine tests: the CancelToken/Deadline pair, the all-or-nothing
// cancellation contract at every engine checkpoint site (sweep row chunks,
// temporal wedges, the AOT pipeline, simmpi halo waits and barriers), the
// shell compile-budget kill, the AOT circuit breaker, watchdog escalation,
// thread-pool error context, and validated env knobs.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/simmpi.hpp"
#include "dsl/program.hpp"
#include "exec/aot_backend.hpp"
#include "exec/executor.hpp"
#include "exec/grid.hpp"
#include "prof/flight.hpp"
#include "prof/log.hpp"
#include "resilience/driver.hpp"
#include "resilience/watchdog.hpp"
#include "support/cancel.hpp"
#include "support/shell.hpp"
#include "support/thread_pool.hpp"
#include "workload/report.hpp"
#include "workload/stencils.hpp"

namespace msc {
namespace {

namespace fs = std::filesystem;
using exec::Boundary;
using exec::GridStorage;

std::string scratch_dir(const char* name) {
  const auto dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<dsl::Program> small_benchmark(const char* name,
                                              std::array<std::int64_t, 3> ext = {16, 16,
                                                                                 16}) {
  const auto& info = workload::benchmark(name);
  return workload::make_program(info, ir::DataType::f64, ext);
}

/// Bit-exact equality across every slot's full padded storage (halos too —
/// the all-or-nothing contract restores everything).
bool grids_identical(const GridStorage<double>& a, const GridStorage<double>& b) {
  if (a.slots() != b.slots() || a.padded_points() != b.padded_points()) return false;
  const std::size_t bytes = static_cast<std::size_t>(a.padded_points()) * sizeof(double);
  for (int s = 0; s < a.slots(); ++s)
    if (std::memcmp(a.slot_data(s), b.slot_data(s), bytes) != 0) return false;
  return true;
}

void seed(GridStorage<double>& g, std::uint64_t base = 42) {
  for (int s = 0; s < g.slots(); ++s) g.fill_random(s, base + static_cast<std::uint64_t>(s));
}

/// A fake host cc that answers availability/flag probes instantly but hangs
/// far longer than any budget used here on a real compile (args carry -o).
std::string hanging_cc(const std::string& dir) {
  const auto path = fs::path(dir) / "hanging_cc.sh";
  std::ofstream out(path.string());
  out << "#!/bin/sh\ncase \"$*\" in *-o*) sleep 30;; esac\nexit 0\n";
  out.close();
  fs::permissions(path, fs::perms::owner_all);
  return path.string();
}

// ---- token + deadline basics ---------------------------------------------

TEST(CancelToken, LatchesFirstReasonAndCountsPolls) {
  CancelToken token;
  EXPECT_EQ(token.state(), ErrorCode::Ok);
  EXPECT_EQ(token.poll(), ErrorCode::Ok);
  token.cancel(ErrorCode::Cancelled);
  token.cancel(ErrorCode::WatchdogStall);  // idempotent: first reason wins
  EXPECT_EQ(token.state(), ErrorCode::Cancelled);
  const auto before = token.polls();
  EXPECT_EQ(token.poll(), ErrorCode::Cancelled);
  EXPECT_EQ(token.polls(), before + 1);
}

TEST(CancelToken, CancelRejectsNonCancellationCodes) {
  CancelToken token;
  EXPECT_THROW(token.cancel(ErrorCode::Ok), Error);
  EXPECT_THROW(token.cancel(ErrorCode::CompileTimeout), Error);
  EXPECT_TRUE(is_cancellation_code(ErrorCode::WatchdogStall));
  EXPECT_FALSE(is_cancellation_code(ErrorCode::CommTimeout));
}

TEST(CancelToken, CheckpointThrowsWithCodeAndSite) {
  CancelToken token;
  EXPECT_NO_THROW(token.checkpoint("anywhere"));
  token.cancel(ErrorCode::WatchdogStall);
  try {
    token.checkpoint("sweep.row_chunk");
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.code(), ErrorCode::WatchdogStall);
    EXPECT_EQ(c.site(), "sweep.row_chunk");
    EXPECT_NE(std::string(c.what()).find("watchdog_stall"), std::string::npos);
    EXPECT_NE(std::string(c.what()).find("sweep.row_chunk"), std::string::npos);
  }
}

TEST(CancelDeadline, UnarmedNeverExpiresArmedDoes) {
  Deadline unarmed;
  EXPECT_FALSE(unarmed.armed());
  EXPECT_FALSE(unarmed.expired());
  EXPECT_GT(unarmed.remaining_ms(), 1e18);

  const Deadline past = Deadline::after_ms(0);
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining_ms(), 0.0);

  const Deadline future = Deadline::after_ms(10000);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_ms(), 9000.0);
  EXPECT_LE(future.remaining_ms(), 10000.0);
}

TEST(CancelDeadline, PollLatchesExpiryAndBudgetMaps) {
  CancelToken token;
  EXPECT_EQ(token.budget_ms(50.0), 50.0);          // cap only, no deadline
  EXPECT_GT(token.budget_ms(0.0), 1e18);           // no cap, no deadline

  token.set_deadline(Deadline::after_ms(10000));
  EXPECT_EQ(token.budget_ms(50.0), 50.0);          // cap below budget
  EXPECT_LE(token.budget_ms(0.0), 10000.0);        // budget alone
  EXPECT_GT(token.budget_ms(0.0), 9000.0);

  CancelToken expired(Deadline::after_ms(0));
  EXPECT_EQ(expired.poll(), ErrorCode::DeadlineExpired);
  EXPECT_EQ(expired.state(), ErrorCode::DeadlineExpired);  // latched
  EXPECT_EQ(expired.budget_ms(50.0), 0.0);
}

TEST(ErrorCodes, StableSlugs) {
  EXPECT_STREQ(error_code_name(ErrorCode::Ok), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::DeadlineExpired), "deadline_expired");
  EXPECT_STREQ(error_code_name(ErrorCode::WatchdogStall), "watchdog_stall");
  EXPECT_STREQ(error_code_name(ErrorCode::CompileTimeout), "compile_timeout");
  EXPECT_STREQ(error_code_name(ErrorCode::Quarantined), "quarantined");
  EXPECT_STREQ(error_code_name(ErrorCode::InvalidConfig), "invalid_config");
}

// ---- all-or-nothing at the engine checkpoints ----------------------------

TEST(CancelSweep, PreCancelledRunLeavesGridPristine) {
  auto prog = small_benchmark("3d7pt_star");
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);
  const GridStorage<double> before = grid;

  CancelToken token;
  token.cancel();
  try {
    exec::run_scheduled(prog->stencil(), prog->primary_schedule(), grid, 1, 4,
                        Boundary::ZeroHalo, prog->bindings(), nullptr, &token);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.site(), "sweep.row_chunk");
  }
  EXPECT_TRUE(grids_identical(grid, before));
}

TEST(CancelSweep, MidRunDeadlineRestoresEveryGridSlot) {
  auto prog = small_benchmark("3d7pt_star", {32, 32, 32});
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);
  const GridStorage<double> before = grid;

  // A ~2 ms budget against a multi-step 32^3 run: expires at some row-chunk
  // checkpoint mid-run on any machine.  The contract under test: wherever
  // it lands, the grid comes back byte-identical to its pre-run state.
  CancelToken token(Deadline::after_ms(2));
  try {
    exec::run_scheduled(prog->stencil(), prog->primary_schedule(), grid, 1, 64,
                        Boundary::ZeroHalo, prog->bindings(), nullptr, &token);
    GTEST_SKIP() << "machine outran the deadline; nothing to verify";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.code(), ErrorCode::DeadlineExpired);
  }
  EXPECT_TRUE(grids_identical(grid, before));
}

TEST(CancelSweep, ArmedButUnfiredTokenIsBitIdenticalToNoToken) {
  auto prog = small_benchmark("3d7pt_star");
  GridStorage<double> with_token(prog->stencil().state());
  GridStorage<double> without(prog->stencil().state());
  seed(with_token);
  seed(without);

  CancelToken token(Deadline::after_ms(60000));
  exec::run_scheduled(prog->stencil(), prog->primary_schedule(), with_token, 1, 5,
                      Boundary::ZeroHalo, prog->bindings(), nullptr, &token);
  exec::run_scheduled(prog->stencil(), prog->primary_schedule(), without, 1, 5,
                      Boundary::ZeroHalo, prog->bindings(), nullptr, nullptr);
  EXPECT_TRUE(grids_identical(with_token, without));
  EXPECT_GT(token.polls(), 0) << "checkpoints must actually poll the token";
}

TEST(CancelReference, GenericEngineHonoursTheToken) {
  auto prog = small_benchmark("3d7pt_star");
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);
  const GridStorage<double> before = grid;

  CancelToken token;
  token.cancel();
  EXPECT_THROW(exec::run_reference(prog->stencil(), grid, 1, 3, Boundary::ZeroHalo,
                                   prog->bindings(), nullptr, {}, &token),
               Cancelled);
  EXPECT_TRUE(grids_identical(grid, before));
}

TEST(CancelTemporal, MidWedgeCancelRestoresGrid) {
  auto prog = small_benchmark("3d7pt_star");
  prog->primary_kernel().time_tile(4);
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);
  const GridStorage<double> before = grid;

  CancelToken token;
  token.cancel(ErrorCode::WatchdogStall);
  try {
    exec::run_scheduled_temporal(prog->stencil(), prog->primary_schedule(), grid, 1, 8,
                                 Boundary::ZeroHalo, prog->bindings(), nullptr, nullptr,
                                 {}, &token);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.code(), ErrorCode::WatchdogStall);
    EXPECT_EQ(c.site(), "temporal.wedge");
  }
  EXPECT_TRUE(grids_identical(grid, before));
}

TEST(CancelTemporal, ParallelWavefrontDrainsCleanlyOnDeadline) {
  auto prog = small_benchmark("3d7pt_star", {32, 32, 32});
  prog->primary_kernel().time_tile(4);
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);
  const GridStorage<double> before = grid;

  ThreadPool pool(4);
  exec::TemporalOptions topts;
  topts.pool = &pool;
  CancelToken token(Deadline::after_ms(2));
  try {
    exec::run_scheduled_temporal(prog->stencil(), prog->primary_schedule(), grid, 1, 64,
                                 Boundary::ZeroHalo, prog->bindings(), nullptr, nullptr,
                                 topts, &token);
    GTEST_SKIP() << "machine outran the deadline; nothing to verify";
  } catch (const Cancelled&) {
  }
  // The wavefront must have drained (no wedged workers) and restored state.
  EXPECT_TRUE(grids_identical(grid, before));
}

// ---- shell compile budget -------------------------------------------------

TEST(CancelShell, TimedOutCommandIsKilledAndReported) {
  const auto t0 = std::chrono::steady_clock::now();
  const ShellResult r = run_shell("sleep 5", 150.0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_TRUE(r.started);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.describe().find("timed out"), std::string::npos);
  EXPECT_LT(elapsed, 3.0) << "the process group must be killed at the budget";
}

TEST(CancelShell, UnboundedCommandStillWorks) {
  const ShellResult r = run_shell("echo shell-ok");
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.timed_out);
  EXPECT_NE(r.output.find("shell-ok"), std::string::npos);
}

// ---- AOT pipeline: checkpoints, budget, circuit breaker ------------------

TEST(CancelAot, PreCancelledRunStopsBeforeThePipeline) {
  auto prog = small_benchmark("3d7pt_star");
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);
  const GridStorage<double> before = grid;

  CancelToken token;
  token.cancel();
  exec::AotOptions opts;
  opts.cache_dir = scratch_dir("msc_cancel_aot_pre");
  try {
    exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), grid, 1, 3,
                            Boundary::ZeroHalo, prog->bindings(), nullptr, nullptr, opts,
                            &token);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.site(), "aot.emit");
  }
  EXPECT_TRUE(grids_identical(grid, before));
}

TEST(CancelAot, DeadlineDuringCompileThrowsCancelledNotQuarantine) {
  const std::string dir = scratch_dir("msc_cancel_aot_deadline");
  auto prog = small_benchmark("3d7pt_star");
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);
  const GridStorage<double> before = grid;
  const int live_before = exec::detail::AotModule::live();

  exec::aot_breaker_reset();
  exec::AotOptions opts;
  opts.cc = hanging_cc(dir);
  opts.cache_dir = dir + "/cache";
  opts.compile_timeout_ms = 60000.0;  // generous budget; the deadline is tighter

  CancelToken token(Deadline::after_ms(200));
  try {
    exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), grid, 1, 3,
                            Boundary::ZeroHalo, prog->bindings(), nullptr, nullptr, opts,
                            &token);
    FAIL() << "expected Cancelled (deadline-driven compile kill)";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.code(), ErrorCode::DeadlineExpired);
    EXPECT_EQ(c.site(), "aot.compile");
  }
  // Deadline pressure is the caller's choice, not the compiler's fault: the
  // plan must NOT be quarantined, the grid must be pristine, and no module
  // handle may have leaked.
  EXPECT_EQ(exec::aot_quarantined_count(), 0);
  EXPECT_TRUE(grids_identical(grid, before));
  EXPECT_EQ(exec::detail::AotModule::live(), live_before);
}

TEST(CancelAot, BudgetTimeoutQuarantinesAndDegradesBitExactly) {
  const std::string dir = scratch_dir("msc_cancel_aot_budget");
  auto prog = small_benchmark("3d7pt_star");
  GridStorage<double> oracle(prog->stencil().state());
  GridStorage<double> degraded(prog->stencil().state());
  GridStorage<double> quarantined(prog->stencil().state());
  seed(oracle);
  seed(degraded);
  seed(quarantined);

  exec::run_scheduled(prog->stencil(), prog->primary_schedule(), oracle, 1, 4,
                      Boundary::ZeroHalo, prog->bindings());

  exec::aot_breaker_reset();
  exec::AotOptions opts;
  opts.cc = hanging_cc(dir);
  opts.cache_dir = dir + "/cache";
  opts.compile_timeout_ms = 150.0;

  // First run: the hanging cc is killed at the budget, the plan is
  // quarantined, and the run degrades to the sweep engine.
  exec::AotExecInfo first;
  exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), degraded, 1, 4,
                          Boundary::ZeroHalo, prog->bindings(), nullptr, &first, opts);
  EXPECT_FALSE(first.aot);
  EXPECT_NE(first.fallback_reason.find("timed out"), std::string::npos);
  EXPECT_STREQ(exec::aot_fallback_slug(first.fallback_reason), "compile_timeout");
  EXPECT_EQ(exec::aot_quarantined_count(), 1);
  EXPECT_FALSE(exec::aot_quarantine_reason(first.plan_hash).empty());

  // Second run: the circuit breaker routes around the compiler entirely.
  const auto t0 = std::chrono::steady_clock::now();
  exec::AotExecInfo second;
  exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), quarantined, 1, 4,
                          Boundary::ZeroHalo, prog->bindings(), nullptr, &second, opts);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(second.aot);
  EXPECT_TRUE(second.quarantined);
  EXPECT_STREQ(exec::aot_fallback_slug(second.fallback_reason), "quarantined");
  EXPECT_LT(wall, 1.0) << "quarantined plans must skip the compiler";

  EXPECT_TRUE(grids_identical(oracle, degraded));
  EXPECT_TRUE(grids_identical(oracle, quarantined));

  exec::aot_breaker_reset();
  EXPECT_EQ(exec::aot_quarantined_count(), 0);
}

TEST(CancelAot, PerStepDispatchCancelsBetweenStepsAndRestores) {
  if (!host_cc_available()) GTEST_SKIP() << "no host cc";
  const std::string dir = scratch_dir("msc_cancel_aot_run");
  auto prog = small_benchmark("3d7pt_star", {24, 24, 24});
  GridStorage<double> grid(prog->stencil().state());
  seed(grid);

  exec::AotOptions opts;
  opts.cache_dir = dir;

  // Warm the compile cache with an unbounded run so the cancelled attempt
  // below reaches the per-step dispatch loop instead of dying in compile.
  exec::AotExecInfo warm;
  exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), grid, 1, 2,
                          Boundary::ZeroHalo, prog->bindings(), nullptr, &warm, opts);
  ASSERT_TRUE(warm.aot) << warm.fallback_reason;

  seed(grid);
  const GridStorage<double> before = grid;
  CancelToken token(Deadline::after_ms(15));
  try {
    exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), grid, 1, 5000,
                            Boundary::ZeroHalo, prog->bindings(), nullptr, nullptr, opts,
                            &token);
    GTEST_SKIP() << "machine outran the deadline; nothing to verify";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.code(), ErrorCode::DeadlineExpired);
  }
  EXPECT_TRUE(grids_identical(grid, before));
}

TEST(CancelAot, ArmedTokenDispatchMatchesSingleCallBitExactly) {
  if (!host_cc_available()) GTEST_SKIP() << "no host cc";
  const std::string dir = scratch_dir("msc_cancel_aot_steps");
  auto prog = small_benchmark("3d7pt_star");
  GridStorage<double> stepped(prog->stencil().state());
  GridStorage<double> whole(prog->stencil().state());
  seed(stepped);
  seed(whole);

  exec::AotOptions opts;
  opts.cache_dir = dir;
  CancelToken token(Deadline::after_ms(60000));

  exec::AotExecInfo ia, ib;
  exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), stepped, 1, 6,
                          Boundary::ZeroHalo, prog->bindings(), nullptr, &ia, opts,
                          &token);
  exec::run_scheduled_aot(prog->stencil(), prog->primary_schedule(), whole, 1, 6,
                          Boundary::ZeroHalo, prog->bindings(), nullptr, &ib, opts);
  ASSERT_TRUE(ia.aot) << ia.fallback_reason;
  ASSERT_TRUE(ib.aot) << ib.fallback_reason;
  EXPECT_TRUE(grids_identical(stepped, whole));
}

// ---- simmpi: deadline-clamped waits --------------------------------------

TEST(CancelComm, MidHaloWaitDeadlineRaisesCancelledOnEveryRank) {
  comm::SimWorld world(2);
  CancelToken token(Deadline::after_ms(80));
  world.set_cancel_token(&token);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    world.run([&](comm::RankCtx& ctx) {
      if (ctx.rank() == 0) {
        double buf = 0.0;
        auto req = ctx.irecv(1, 7, &buf, sizeof buf);
        ctx.wait(req);  // rank 1 never sends: only the deadline ends this
      }
    });
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.code(), ErrorCode::DeadlineExpired);
    EXPECT_EQ(c.site(), "comm.wait");
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 3.0) << "the wait must be clamped to the deadline budget";
}

TEST(CancelComm, BarrierHonoursTheDeadline) {
  comm::SimWorld world(2);
  CancelToken token(Deadline::after_ms(80));
  world.set_cancel_token(&token);
  try {
    world.run([&](comm::RankCtx& ctx) {
      if (ctx.rank() == 0) ctx.barrier();  // rank 1 never arrives
    });
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.site(), "comm.barrier");
  }
}

TEST(CancelComm, UncancelledWorldIsUnaffectedByAnArmedToken) {
  comm::SimWorld world(2);
  CancelToken token(Deadline::after_ms(60000));
  world.set_cancel_token(&token);
  double got = -1.0;
  world.run([&](comm::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const double v = 3.5;
      auto req = ctx.isend(1, 9, &v, sizeof v);
      ctx.wait(req);
    } else {
      auto req = ctx.irecv(0, 9, &got, sizeof got);
      ctx.wait(req);
    }
    ctx.barrier();
  });
  EXPECT_EQ(got, 3.5);
}

// ---- watchdog -------------------------------------------------------------

TEST(Watchdog, EscalatesStallCancelDumpOnHeartbeatStagnation) {
  const std::string dir = scratch_dir("msc_watchdog_test");
  const std::string dump = dir + "/stall.flight.json";

  CancelToken token;
  resilience::WatchdogConfig cfg;
  cfg.poll_ms = 2.0;
  cfg.stall_ms = 20.0;
  cfg.cancel_ms = 40.0;
  cfg.dump_ms = 60.0;
  cfg.dump_path = dump;

  // Nothing records flight events while we sleep: the heartbeat stagnates
  // and the ladder must walk stall -> cancel -> dump on its own.
  resilience::Watchdog dog(cfg, &token);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (dog.stage() != resilience::WatchdogStage::Dumped &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.stop();

  EXPECT_EQ(dog.stage(), resilience::WatchdogStage::Dumped);
  EXPECT_EQ(token.state(), ErrorCode::WatchdogStall);
  EXPECT_GE(dog.max_gap_ms(), cfg.cancel_ms);

  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << "flight dump must be written at the last rung";
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto doc = workload::Json::parse(text);
  EXPECT_EQ(doc.find("schema")->as_string(), "msc-flight-v1");
}

TEST(Watchdog, StaysIdleWhileTheHeartbeatAdvances) {
  CancelToken token;
  resilience::WatchdogConfig cfg;
  cfg.poll_ms = 2.0;
  cfg.stall_ms = 30.0;
  cfg.cancel_ms = 60.0;

  resilience::Watchdog dog(cfg, &token);
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
  while (std::chrono::steady_clock::now() < until) {
    const std::uint64_t now = prof::flight_now_ns();
    prof::global_flight().record(prof::FlightKind::Step, now, now, 1, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  dog.stop();
  EXPECT_EQ(dog.stage(), resilience::WatchdogStage::Idle);
  EXPECT_EQ(token.state(), ErrorCode::Ok);
}

TEST(Watchdog, StageNamesAreStable) {
  using resilience::WatchdogStage;
  EXPECT_STREQ(resilience::watchdog_stage_name(WatchdogStage::Idle), "idle");
  EXPECT_STREQ(resilience::watchdog_stage_name(WatchdogStage::Stalled), "stalled");
  EXPECT_STREQ(resilience::watchdog_stage_name(WatchdogStage::Cancelled), "cancelled");
  EXPECT_STREQ(resilience::watchdog_stage_name(WatchdogStage::Dumped), "dumped");
}

// ---- thread pool: exception context --------------------------------------

TEST(PoolErrors, WorkerErrorCarriesChunkContext) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 100, [](std::int64_t lo, std::int64_t) {
      if (lo == 0) throw Error("boom in worker");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom in worker"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[in parallel chunk"), std::string::npos);
  }
}

TEST(PoolErrors, CancelledPassesThroughUnwrapped) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 100, [](std::int64_t lo, std::int64_t) {
      if (lo == 0) throw Cancelled(ErrorCode::DeadlineExpired, "sweep.row_chunk");
    });
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    // Still catchable as its concrete type, code and site intact — context
    // wrapping must never erase the cancellation taxonomy.
    EXPECT_EQ(c.code(), ErrorCode::DeadlineExpired);
    EXPECT_EQ(c.site(), "sweep.row_chunk");
    EXPECT_EQ(std::string(c.what()).find("[in parallel"), std::string::npos);
  }
}

TEST(PoolErrors, TaskErrorCarriesTaskContext) {
  ThreadPool pool(2);
  try {
    pool.parallel_tasks(8, [](std::int64_t i) {
      if (i == 3) throw Error("task blew up");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("task blew up"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[in parallel task 3]"), std::string::npos);
  }
}

// ---- validated env knobs --------------------------------------------------

class EnvKnobs : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::global_log().set_capture([this](const std::string& line) {
      lines_.push_back(line);
    });
  }
  void TearDown() override {
    prof::global_log().set_capture(nullptr);
    ::unsetenv("MSC_COMM_TIMEOUT_MS");
    ::unsetenv("MSC_CKPT_EVERY");
    ::unsetenv("MSC_LOG_LEVEL");
    prof::global_log().configure_from_env();
  }
  bool captured(const std::string& needle) const {
    for (const auto& l : lines_)
      if (l.find(needle) != std::string::npos) return true;
    return false;
  }
  std::vector<std::string> lines_;
};

TEST_F(EnvKnobs, CommTimeoutRejectsGarbageWithOneStructuredLine) {
  ::setenv("MSC_COMM_TIMEOUT_MS", "banana", 1);
  EXPECT_EQ(comm::comm_config_from_env().timeout_ms, 0.0);
  EXPECT_TRUE(captured("invalid_config"));
  EXPECT_TRUE(captured("MSC_COMM_TIMEOUT_MS"));

  lines_.clear();
  ::setenv("MSC_COMM_TIMEOUT_MS", "-5", 1);
  EXPECT_EQ(comm::comm_config_from_env().timeout_ms, 0.0);
  EXPECT_TRUE(captured("invalid_config"));

  lines_.clear();
  ::setenv("MSC_COMM_TIMEOUT_MS", "250", 1);
  EXPECT_EQ(comm::comm_config_from_env().timeout_ms, 250.0);
  EXPECT_TRUE(lines_.empty()) << "valid values must not log";
}

TEST_F(EnvKnobs, CkptEveryRejectsNegativeAndTrailingGarbage) {
  ::setenv("MSC_CKPT_EVERY", "-3", 1);
  EXPECT_EQ(resilience::ckpt_every_from_env(4), 4);
  EXPECT_TRUE(captured("invalid_config"));
  EXPECT_TRUE(captured("MSC_CKPT_EVERY"));

  lines_.clear();
  ::setenv("MSC_CKPT_EVERY", "5x", 1);
  EXPECT_EQ(resilience::ckpt_every_from_env(4), 4);
  EXPECT_TRUE(captured("invalid_config"));

  lines_.clear();
  ::setenv("MSC_CKPT_EVERY", "8", 1);
  EXPECT_EQ(resilience::ckpt_every_from_env(4), 8);
  ::setenv("MSC_CKPT_EVERY", "0", 1);  // 0 = disabled is a legal setting
  EXPECT_EQ(resilience::ckpt_every_from_env(4), 0);
  EXPECT_TRUE(lines_.empty());
}

TEST_F(EnvKnobs, UnknownLogLevelIsRejectedLoudly) {
  ::setenv("MSC_LOG_LEVEL", "chatty", 1);
  prof::global_log().configure_from_env();
  EXPECT_EQ(prof::global_log().level(), prof::LogLevel::Off);
  EXPECT_TRUE(captured("invalid_config"));
  EXPECT_TRUE(captured("MSC_LOG_LEVEL"));

  lines_.clear();
  ::setenv("MSC_LOG_LEVEL", "warn", 1);
  prof::global_log().configure_from_env();
  EXPECT_EQ(prof::global_log().level(), prof::LogLevel::Warn);
}

}  // namespace
}  // namespace msc
