// Multi-grid stencil tests (the §5.6 extension): stencils whose kernels
// read auxiliary coefficient grids next to the time-windowed state grid.

#include <gtest/gtest.h>

#include <cmath>

#include "dsl/program.hpp"
#include "exec/executor.hpp"
#include "support/error.hpp"

namespace msc {
namespace {

/// q[t] = q[t-1] - c * W(x) * (q - q_west)[t-1] with coefficient grid W.
struct AdvectProgram {
  std::unique_ptr<dsl::Program> prog;
  dsl::GridRef Q, W;

  explicit AdvectProgram(std::int64_t n, double c = 0.25) {
    prog = std::make_unique<dsl::Program>("mg");
    dsl::Var j = prog->var("j"), i = prog->var("i");
    Q = prog->def_tensor_2d_timewin("Q", 1, 1, ir::DataType::f64, n, n);
    W = prog->def_tensor_2d("W", 1, ir::DataType::f64, n, n);
    auto& k = prog->kernel("k", {j, i},
                           Q(j, i) - dsl::ExprH(c) * W(j, i) * (Q(j, i) - Q(j, i - 1)));
    prog->def_stencil("st", Q, k[prog->t() - 1]);
  }
};

TEST(MultiGrid, StencilIdentifiesStateAndAux) {
  AdvectProgram p(16);
  const auto& st = p.prog->stencil();
  EXPECT_EQ(st.state()->name(), "Q");
  ASSERT_EQ(st.aux_inputs().size(), 1u);
  EXPECT_EQ(st.aux_inputs()[0]->name(), "W");
}

TEST(MultiGrid, AuxGridMustNotHaveTimeWindow) {
  dsl::Program prog("bad");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto Q = prog.def_tensor_2d_timewin("Q", 1, 1, ir::DataType::f64, 8, 8);
  auto W = prog.def_tensor_2d_timewin("W", 2, 1, ir::DataType::f64, 8, 8);  // windowed aux
  auto& k = prog.kernel("k", {j, i}, W(j, i) * Q(j, i));
  EXPECT_THROW(prog.def_stencil("st", Q, k[prog.t() - 1]), Error);
}

TEST(MultiGrid, StencilMustReadItsResultGrid) {
  dsl::Program prog("noread");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto Q = prog.def_tensor_2d_timewin("Q", 1, 1, ir::DataType::f64, 8, 8);
  auto W = prog.def_tensor_2d("W", 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i}, dsl::ExprH(2.0) * W(j, i));  // never reads Q
  EXPECT_THROW(prog.def_stencil("st", Q, k[prog.t() - 1]), Error);
}

TEST(MultiGrid, RunRequiresAuxToBeSet) {
  AdvectProgram p(8);
  p.prog->set_initial([](std::int64_t, std::array<std::int64_t, 3>) { return 1.0; });
  EXPECT_THROW(p.prog->run(1, 1), Error);
}

TEST(MultiGrid, SetAuxRejectsNonAuxGrid) {
  AdvectProgram p(8);
  EXPECT_THROW(p.prog->set_aux(p.Q, [](std::array<std::int64_t, 3>) { return 1.0; }), Error);
}

TEST(MultiGrid, ConstantCoefficientGridMatchesScalarStencil) {
  // With W == 0.5 everywhere, the multi-grid program must equal the
  // constant-coefficient program q - 0.125*(q - q_west).
  const std::int64_t n = 24;
  AdvectProgram mg(n);
  mg.prog->set_aux(mg.W, [](std::array<std::int64_t, 3>) { return 0.5; });
  mg.prog->set_initial([](std::int64_t, std::array<std::int64_t, 3> c) {
    return std::sin(0.3 * static_cast<double>(c[0] + 2 * c[1]));
  });
  mg.prog->run(1, 6);

  dsl::Program scalar("scalar");
  dsl::Var j = scalar.var("j"), i = scalar.var("i");
  auto Q = scalar.def_tensor_2d_timewin("Q", 1, 1, ir::DataType::f64, n, n);
  auto& k = scalar.kernel(
      "k", {j, i}, Q(j, i) - dsl::ExprH(0.125) * (Q(j, i) - Q(j, i - 1)));
  scalar.def_stencil("st", Q, k[scalar.t() - 1]);
  scalar.set_initial([](std::int64_t, std::array<std::int64_t, 3> c) {
    return std::sin(0.3 * static_cast<double>(c[0] + 2 * c[1]));
  });
  scalar.run(1, 6);

  for (std::int64_t a = 0; a < n; ++a)
    for (std::int64_t b = 0; b < n; ++b)
      EXPECT_NEAR(mg.prog->value_at(6, {a, b, 0}), scalar.value_at(6, {a, b, 0}), 1e-12)
          << "(" << a << "," << b << ")";
}

TEST(MultiGrid, SpatiallyVaryingCoefficientActsLocally) {
  // W is 1 on the left half and 0 on the right: the right half must stay
  // frozen while the left half advects.
  const std::int64_t n = 16;
  AdvectProgram p(n, /*c=*/0.5);
  p.prog->set_aux(p.W, [n](std::array<std::int64_t, 3> c) { return c[1] < n / 2 ? 1.0 : 0.0; });
  p.prog->set_initial([](std::int64_t, std::array<std::int64_t, 3> c) {
    return static_cast<double>(c[1]);  // ramp in i
  });
  p.prog->run(1, 3);
  // Frozen half: q stays the initial ramp.
  EXPECT_DOUBLE_EQ(p.prog->value_at(3, {5, n - 2, 0}), static_cast<double>(n - 2));
  // Active half: the ramp advects (upwind of a linear ramp subtracts c*W).
  EXPECT_NE(p.prog->value_at(3, {5, 3, 0}), 3.0);
}

TEST(MultiGrid, AuxHaloBoundaryModes) {
  // Periodic aux halo: the coefficient wraps; verify a kernel reading
  // W(j, i+1) at the right edge sees column 0's value.
  const std::int64_t n = 8;
  dsl::Program prog("auxhalo");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto Q = prog.def_tensor_2d_timewin("Q", 1, 1, ir::DataType::f64, n, n);
  auto W = prog.def_tensor_2d("W", 1, ir::DataType::f64, n, n);
  auto& k = prog.kernel("k", {j, i}, Q(j, i) + W(j, i + 1));
  prog.def_stencil("st", Q, k[prog.t() - 1]);
  prog.set_aux(W, [](std::array<std::int64_t, 3> c) { return static_cast<double>(c[1]); },
               exec::Boundary::Periodic);
  prog.set_initial([](std::int64_t, std::array<std::int64_t, 3>) { return 0.0; });
  prog.run(1, 1);
  EXPECT_DOUBLE_EQ(prog.value_at(1, {2, n - 1, 0}), 0.0);  // wrapped W(.,0) = 0
  EXPECT_DOUBLE_EQ(prog.value_at(1, {2, 0, 0}), 1.0);      // W(.,1) = 1
}

TEST(MultiGrid, CodegenRejectsMultiGridStencilsClearly) {
  AdvectProgram p(8);
  p.prog->set_aux(p.W, [](std::array<std::int64_t, 3>) { return 1.0; });
  EXPECT_THROW(p.prog->compile_to_source_code("c"), Error);
}

TEST(MultiGrid, TwoAuxGridsResolveIndependently) {
  const std::int64_t n = 12;
  dsl::Program prog("uv");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto Q = prog.def_tensor_2d_timewin("Q", 1, 1, ir::DataType::f64, n, n);
  auto U = prog.def_tensor_2d("U", 1, ir::DataType::f64, n, n);
  auto V = prog.def_tensor_2d("V", 1, ir::DataType::f64, n, n);
  auto& k = prog.kernel("k", {j, i}, Q(j, i) + U(j, i) - V(j, i));
  prog.def_stencil("st", Q, k[prog.t() - 1]);
  prog.set_aux(U, [](std::array<std::int64_t, 3>) { return 5.0; });
  prog.set_aux(V, [](std::array<std::int64_t, 3>) { return 2.0; });
  prog.set_initial([](std::int64_t, std::array<std::int64_t, 3>) { return 1.0; });
  prog.run(1, 1);
  EXPECT_DOUBLE_EQ(prog.value_at(1, {6, 6, 0}), 4.0);  // 1 + 5 - 2
  EXPECT_EQ(prog.stencil().aux_inputs().size(), 2u);
}

}  // namespace
}  // namespace msc
