// Unit tests of the schedule primitives: legality rules, loop-nest
// rewriting, SPM sizing queries and the sliding time window.

#include <gtest/gtest.h>

#include "ir/kernel.hpp"
#include "ir/tensor.hpp"
#include "schedule/schedule.hpp"
#include "schedule/time_window.hpp"
#include "support/error.hpp"

namespace msc::schedule {
namespace {

ir::KernelPtr make_3d_kernel(std::int64_t n = 64, std::int64_t halo = 1) {
  auto B = ir::make_sp_tensor("B", ir::DataType::f64, {n, n, n}, halo, 3);
  auto rhs = ir::make_binary(
      ir::BinaryOp::Add,
      ir::make_binary(ir::BinaryOp::Mul, ir::make_float(0.5),
                      ir::make_access(B, {{"k", 0}, {"j", 0}, {"i", 0}})),
      ir::make_binary(ir::BinaryOp::Mul, ir::make_float(0.1),
                      ir::make_access(B, {{"k", 0}, {"j", 0}, {"i", -1}})));
  return ir::make_kernel("k3d", ir::make_te_tensor("o", B), ir::default_axes(B), rhs);
}

TEST(Schedule, SplitCreatesOuterInnerPair) {
  Schedule s(make_3d_kernel());
  s.split("i", 16, "io", "ii");
  ASSERT_EQ(s.axes().size(), 4u);
  EXPECT_EQ(s.axes()[2].id_var, "io");
  EXPECT_EQ(s.axes()[2].role, ir::AxisRole::Outer);
  EXPECT_EQ(s.axes()[2].trip_count(), 4);  // 64 / 16
  EXPECT_EQ(s.axes()[2].tile_size, 16);
  EXPECT_EQ(s.axes()[3].id_var, "ii");
  EXPECT_EQ(s.axes()[3].role, ir::AxisRole::Inner);
  EXPECT_EQ(s.axes()[3].trip_count(), 16);
}

TEST(Schedule, SplitCeilsNonDividingFactor) {
  Schedule s(make_3d_kernel(60));
  s.split("i", 16, "io", "ii");
  EXPECT_EQ(s.axes()[2].trip_count(), 4);  // ceil(60/16)
}

TEST(Schedule, SplitRejectsBadInputs) {
  Schedule s(make_3d_kernel());
  EXPECT_THROW(s.split("zz", 8, "a", "b"), Error);   // unknown axis
  EXPECT_THROW(s.split("i", 0, "a", "b"), Error);    // zero factor
  EXPECT_THROW(s.split("i", 128, "a", "b"), Error);  // factor > extent
  s.split("i", 8, "io", "ii");
  EXPECT_THROW(s.split("io", 2, "x", "y"), Error);   // re-splitting a split axis
  EXPECT_THROW(s.split("j", 8, "io", "q"), Error);   // name collision
}

TEST(Schedule, TileSplitsAllDims) {
  Schedule s(make_3d_kernel());
  s.tile({4, 8, 16});
  ASSERT_EQ(s.axes().size(), 6u);
  EXPECT_EQ(s.tile_extent(0), 4);
  EXPECT_EQ(s.tile_extent(1), 8);
  EXPECT_EQ(s.tile_extent(2), 16);
}

TEST(Schedule, TileExtentOfUnsplitDimIsFullExtent) {
  Schedule s(make_3d_kernel());
  EXPECT_EQ(s.tile_extent(0), 64);
}

TEST(Schedule, TileRejectsWrongArity) {
  Schedule s(make_3d_kernel());
  EXPECT_THROW(s.tile({4, 8}), Error);
}

TEST(Schedule, ReorderPermutes) {
  Schedule s(make_3d_kernel());
  s.tile({4, 8, 16});
  s.reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"});
  EXPECT_EQ(s.axes()[0].id_var, "k_outer");
  EXPECT_EQ(s.axes()[3].id_var, "k_inner");
  EXPECT_EQ(s.axes()[3].order, 3);
}

TEST(Schedule, ReorderRejectsIncompleteOrDuplicated) {
  Schedule s(make_3d_kernel());
  EXPECT_THROW(s.reorder({"k", "j"}), Error);
  EXPECT_THROW(s.reorder({"k", "j", "j"}), Error);
  EXPECT_THROW(s.reorder({"k", "j", "zz"}), Error);
}

TEST(Schedule, ParallelMarksOneAxisOnly) {
  Schedule s(make_3d_kernel());
  s.parallel("k", 64);
  EXPECT_EQ(s.parallel_axis_index(), 0);
  EXPECT_EQ(s.parallel_threads(), 64);
  EXPECT_THROW(s.parallel("j", 8), Error);
}

TEST(Schedule, VectorizeOnlyInnermost) {
  Schedule s(make_3d_kernel());
  EXPECT_THROW(s.vectorize("k"), Error);
  s.vectorize("i");
  EXPECT_TRUE(s.axes().back().vectorize);
}

TEST(Schedule, CacheBindingRules) {
  Schedule s(make_3d_kernel());
  EXPECT_THROW(s.cache_read("nonexistent", "buf"), Error);
  s.cache_read("B", "rbuf");
  EXPECT_THROW(s.cache_read("B", "rbuf"), Error);  // duplicate buffer name
  s.cache_write("wbuf");
  EXPECT_THROW(s.cache_write("wbuf2"), Error);     // only one write buffer
  EXPECT_THROW(s.compute_at("ghost", "k"), Error); // unbound buffer
  s.compute_at("rbuf", "k");
  EXPECT_THROW(s.compute_at("rbuf", "j"), Error);  // repositioning
}

TEST(Schedule, ScopeParsing) {
  EXPECT_EQ(parse_scope("global"), CacheScope::Global);
  EXPECT_EQ(parse_scope("local"), CacheScope::Local);
  EXPECT_THROW(parse_scope("weird"), Error);
}

TEST(Schedule, SpmPipelineDetection) {
  Schedule s(make_3d_kernel());
  s.tile({2, 8, 16});
  s.reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"});
  EXPECT_FALSE(s.has_spm_pipeline());
  s.cache_read("B", "rbuf");
  s.cache_write("wbuf");
  s.compute_at("rbuf", "i_outer");
  s.compute_at("wbuf", "i_outer");
  EXPECT_TRUE(s.has_spm_pipeline());
}

TEST(Schedule, SpmTileShapeAndBytes) {
  Schedule s(make_3d_kernel(64, 1));
  s.tile({2, 8, 16});
  s.reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"});
  s.cache_read("B", "rbuf");
  s.cache_write("wbuf");
  s.compute_at("rbuf", "i_outer");
  s.compute_at("wbuf", "i_outer");
  const auto shape = s.spm_tile_shape();
  ASSERT_EQ(shape.size(), 3u);
  EXPECT_EQ(shape[0], 2);
  EXPECT_EQ(shape[1], 8);
  EXPECT_EQ(shape[2], 16);
  // Staged elements: (2+2)(8+2)(16+2) for the radius-1 kernel... radius is
  // 1 only along i in this kernel but the staged box uses per-dim radius.
  EXPECT_EQ(s.spm_tile_elements(), (2 + 0) * (8 + 0) * (16 + 2));
  EXPECT_EQ(s.spm_bytes(), s.spm_tile_elements() * 8 + 2 * 8 * 16 * 8);
}

TEST(SlidingWindow, SlotMappingIsStableAcrossSlide) {
  SlidingWindow w(3);
  // While the window is at t=5, steps 5, 4, 3 occupy distinct slots.
  const int s5 = w.slot_of(5, 5), s4 = w.slot_of(5, 4), s3 = w.slot_of(5, 3);
  EXPECT_NE(s5, s4);
  EXPECT_NE(s4, s3);
  EXPECT_NE(s5, s3);
  // Advancing to t=6: steps 5 and 4 keep their slots; 6 recycles 3's slot.
  EXPECT_EQ(w.slot_of(6, 5), s5);
  EXPECT_EQ(w.slot_of(6, 4), s4);
  EXPECT_EQ(w.output_slot(6), s3);
}

TEST(SlidingWindow, NegativeTimesWork) {
  SlidingWindow w(3);
  EXPECT_NO_THROW(w.slot_of(0, -1));
  EXPECT_NO_THROW(w.slot_of(0, -2));
  EXPECT_THROW(w.slot_of(0, -3), Error);  // outside the window
  EXPECT_THROW(w.slot_of(0, 1), Error);   // the future
}

TEST(SlidingWindow, FootprintVsUnbounded) {
  SlidingWindow w(3);
  const std::int64_t slot = 1024;
  EXPECT_EQ(w.footprint_bytes(slot), 3 * slot);
  // Fig. 5(b): storing all timesteps grows linearly.
  EXPECT_EQ(SlidingWindow::unbounded_bytes(slot, 100), 101 * slot);
  EXPECT_GT(SlidingWindow::unbounded_bytes(slot, 100), w.footprint_bytes(slot));
}

}  // namespace
}  // namespace msc::schedule
