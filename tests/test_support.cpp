// Unit tests of the support layer: error streams, aligned buffers, RNG,
// string utilities, table rendering, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/shell.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace msc {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    MSC_CHECK(1 == 2) << "custom detail " << 42;
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  MSC_CHECK(true) << "never evaluated";
  SUCCEED();
}

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(MSC_FAIL() << "boom", Error);
}

TEST(AlignedBuffer, ZeroInitializedAndAligned) {
  AlignedBuffer buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % AlignedBuffer::kAlignment, 0u);
  for (auto b : buf.as<std::uint8_t>()) EXPECT_EQ(b, 0u);
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer a(64);
  a.as<std::int32_t>()[0] = 7;
  AlignedBuffer b = a;
  b.as<std::int32_t>()[0] = 9;
  EXPECT_EQ(a.as<std::int32_t>()[0], 7);
  EXPECT_EQ(b.as<std::int32_t>()[0], 9);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(64);
  a.as<std::int32_t>()[0] = 5;
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.as<std::int32_t>()[0], 5);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  buf.fill_zero();  // no-op, no crash
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int n = 0; n < 100; ++n) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int n = 0; n < 1000; ++n) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, IntRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int n = 0; n < 1000; ++n) {
    const auto v = rng.next_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, IntRangeRejectsInverted) { EXPECT_THROW(Rng(1).next_int(5, 3), Error); }

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, Printf) {
  EXPECT_EQ(strprintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, CountLocSkipsBlanksAndComments) {
  const std::string src = "int x;\n\n// comment\n  // indented comment\ny = 2;\n";
  EXPECT_EQ(count_loc(src), 2);
}

TEST(Strings, CountLocKeepsPreprocessor) {
  EXPECT_EQ(count_loc("#include <a.h>\n#pragma omp parallel\n# plain comment\n"), 2);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t n = lo; n < hi; ++n) hits[static_cast<std::size_t>(n)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::int64_t lo, std::int64_t) {
                                   if (lo >= 0) throw Error("worker failure");
                                 }),
               Error);
}

TEST(ThreadPool, ParallelTasksRunAll) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  pool.parallel_tasks(10, [&](std::int64_t idx) { sum += static_cast<int>(idx); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, EnqueueAfterShutdownThrows) {
  // Regression: jobs enqueued while the destructor raced were silently
  // dropped, so parallel_for would hang on a completion latch nobody
  // decrements.  A stopped pool must reject work loudly instead.
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  EXPECT_THROW(pool.enqueue([] {}), Error);
  EXPECT_THROW(pool.parallel_for(0, 8, [](std::int64_t, std::int64_t) {}), Error);
  EXPECT_THROW(pool.parallel_tasks(4, [](std::int64_t) {}), Error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int n = 0; n < 64; ++n) pool.enqueue([&] { ran++; });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(ran.load(), 64);  // queued work completed, none dropped
  EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, ConcurrentSubmittersVsShutdownNeverLoseWork) {
  // Stress the enqueue/shutdown race: every submission must either run to
  // completion or throw — a submission that "succeeds" but never runs
  // would deadlock callers waiting on it.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<int> accepted{0}, ran{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (int n = 0; n < 50; ++n) {
          try {
            pool.enqueue([&] { ran++; });
            accepted++;
          } catch (const Error&) {
            break;  // pool stopped — every later enqueue throws too
          }
        }
      });
    }
    pool.shutdown();
    for (auto& s : submitters) s.join();
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(Shell, DistinguishesExitStatusFromSignalDeath) {
  // Regression: pclose status used to be compared to 0 directly, which
  // conflates "exited nonzero" with "killed by a signal" (and reports
  // garbage exit codes for the latter).  The decode must keep them apart.
  const ShellResult ok = run_shell("exit 0");
  EXPECT_TRUE(ok.ok);
  EXPECT_TRUE(ok.started);
  EXPECT_FALSE(ok.signaled);
  EXPECT_EQ(ok.exit_code, 0);

  const ShellResult failed = run_shell("exit 3");
  EXPECT_FALSE(failed.ok);
  EXPECT_TRUE(failed.started);
  EXPECT_FALSE(failed.signaled);
  EXPECT_EQ(failed.exit_code, 3);
  EXPECT_EQ(failed.describe(), "exit 3");

  const ShellResult killed = run_shell("kill -KILL $$");
  EXPECT_FALSE(killed.ok);
  EXPECT_TRUE(killed.started);
  EXPECT_TRUE(killed.signaled);
  EXPECT_EQ(killed.term_signal, 9);
  EXPECT_EQ(killed.describe(), "signal 9");
}

TEST(Shell, CapturesStdout) {
  const ShellResult r = run_shell("printf 'a b\\nc'");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.output, "a b\nc");
}

TEST(Shell, QuoteSurvivesHostileCharacters) {
  // shell_quote must round-trip any byte string through the shell intact —
  // spaces, quotes, globs, $-expansion.
  for (const std::string hostile :
       {"plain", "with space", "it's quoted", "two''quotes", "a\"b", "$HOME `id` $(id)",
        "semi;colon && glob *"}) {
    const ShellResult r = run_shell("printf '%s' " + shell_quote(hostile));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.output, hostile) << "quoting mangled: " << hostile;
  }
}

TEST(Shell, HostCcProbeIsNegativeForMissingDrivers) {
  EXPECT_FALSE(host_cc_available("msc-no-such-compiler-2xyz"));
}

TEST(ThreadPool, ParallelForSurvivesRacingShutdown) {
  // parallel_for must terminate (result or msc::Error), never hang, when
  // the pool is shut down underneath it.
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    std::atomic<std::int64_t> covered{0};
    std::thread killer([&] { pool.shutdown(); });
    try {
      pool.parallel_for(0, 256, [&](std::int64_t lo, std::int64_t hi) { covered += hi - lo; });
      EXPECT_EQ(covered.load(), 256);  // submitted before the stop: all ran
    } catch (const Error&) {
      // Rejected mid-submission: chunks already queued still drain, so
      // coverage is partial but the call returned instead of hanging.
      EXPECT_LE(covered.load(), 256);
    }
    killer.join();
  }
}

}  // namespace
}  // namespace msc
