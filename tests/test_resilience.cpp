// Resilience tests: the retry/backoff ladder, fault plans and the
// deterministic injector, the fault-tolerant simmpi transport (drop /
// corrupt / duplicate / delay recovery, timeout-abort diagnosis, barrier
// behavior under rank failure), checkpoint/restart, and the chaos runner.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "comm/simmpi.hpp"
#include "exec/grid.hpp"
#include "ir/tensor.hpp"
#include "prof/counters.hpp"
#include "resilience/chaos.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/driver.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/retry.hpp"
#include "support/error.hpp"

namespace msc::resilience {
namespace {

// ---- retry/backoff math --------------------------------------------------

TEST(Retry, EscalationLadderOrder) {
  RetryPolicy policy;  // max_retries = 4
  EXPECT_EQ(escalation_for_attempt(policy, 0), Escalation::Wait);
  for (int a = 1; a <= policy.max_retries; ++a)
    EXPECT_EQ(escalation_for_attempt(policy, a), Escalation::Retry) << "attempt " << a;
  EXPECT_EQ(escalation_for_attempt(policy, policy.max_retries + 1), Escalation::Resync);
  EXPECT_EQ(escalation_for_attempt(policy, policy.max_retries + 2), Escalation::Abort);
  EXPECT_EQ(escalation_for_attempt(policy, 100), Escalation::Abort);
}

TEST(Retry, AttemptZeroIsThePlainTimeout) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(retry_wait_ms(policy, 10.0, 0, 12345), 10.0);
  // ... regardless of the jitter seed: fault-free runs keep exact deadlines.
  EXPECT_DOUBLE_EQ(retry_wait_ms(policy, 10.0, 0, 999), 10.0);
}

TEST(Retry, BackoffGrowsAndCaps) {
  RetryPolicy policy;  // multiplier 2, cap 8, jitter 0.25
  const double timeout = 10.0;
  // Window centers double per attempt until the cap; jitter is at most
  // +/- 12.5% of the window.
  double prev = timeout;
  for (int a = 1; a <= 3; ++a) {
    const double w = retry_wait_ms(policy, timeout, a, jitter_seed(1, 0, 1, 0, a));
    const double center = timeout * std::pow(policy.backoff_multiplier, a);
    EXPECT_GE(w, center * (1.0 - policy.jitter / 2.0) - 1e-9) << "attempt " << a;
    EXPECT_LE(w, center * (1.0 + policy.jitter / 2.0) + 1e-9) << "attempt " << a;
    EXPECT_GT(w, prev);
    prev = w;
  }
  // Far beyond the cap the window stops growing.
  const double capped = timeout * policy.cap_multiplier;
  for (int a = 10; a < 13; ++a) {
    const double w = retry_wait_ms(policy, timeout, a, jitter_seed(1, 0, 1, 0, a));
    EXPECT_GE(w, capped * (1.0 - policy.jitter / 2.0) - 1e-9);
    EXPECT_LE(w, capped * (1.0 + policy.jitter / 2.0) + 1e-9);
  }
}

TEST(Retry, JitterIsDeterministic) {
  RetryPolicy policy;
  const double a = retry_wait_ms(policy, 10.0, 2, jitter_seed(7, 0, 1, 3, 2));
  const double b = retry_wait_ms(policy, 10.0, 2, jitter_seed(7, 0, 1, 3, 2));
  EXPECT_DOUBLE_EQ(a, b);  // same identity -> same wait schedule, replayable
  // Different attempts draw from different streams (the ladder does not
  // re-use one jitter value forever).
  EXPECT_NE(jitter_seed(7, 0, 1, 3, 2), jitter_seed(7, 0, 1, 3, 3));
  EXPECT_NE(jitter_seed(7, 0, 1, 3, 2), jitter_seed(7, 1, 0, 3, 2));
}

// ---- fault plans and the injector ----------------------------------------

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan plan;
  plan.seed = 99;
  FaultRule drop;
  drop.kind = FaultKind::Drop;
  drop.src = 0;
  drop.dst = 1;
  drop.tag = 4;
  drop.probability = 0.5;
  drop.max_count = 2;
  plan.rules.push_back(drop);
  FaultRule corrupt;
  corrupt.kind = FaultKind::Corrupt;
  corrupt.bit = 17;
  corrupt.max_count = 1;
  plan.rules.push_back(corrupt);
  FaultRule crash;
  crash.kind = FaultKind::Crash;
  crash.rank = 1;
  crash.at_step = 3;
  plan.rules.push_back(crash);

  const FaultPlan back = FaultPlan::parse(plan.to_json().dump());
  ASSERT_EQ(back.rules.size(), plan.rules.size());
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.rules[0].kind, FaultKind::Drop);
  EXPECT_EQ(back.rules[0].src, 0);
  EXPECT_EQ(back.rules[0].dst, 1);
  EXPECT_EQ(back.rules[0].tag, 4);
  EXPECT_DOUBLE_EQ(back.rules[0].probability, 0.5);
  EXPECT_EQ(back.rules[0].max_count, 2);
  EXPECT_EQ(back.rules[1].kind, FaultKind::Corrupt);
  EXPECT_EQ(back.rules[1].bit, 17);
  EXPECT_EQ(back.rules[2].kind, FaultKind::Crash);
  EXPECT_EQ(back.rules[2].rank, 1);
  EXPECT_EQ(back.rules[2].at_step, 3);
}

TEST(FaultPlan, RejectsBadInput) {
  EXPECT_THROW(FaultPlan::parse(R"({"schema":"nope","rules":[]})"), Error);
  EXPECT_THROW(FaultPlan::parse(R"({"schema":"msc-fault-plan-v1"})"), Error);
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema":"msc-fault-plan-v1","rules":[{"kind":"gremlin"}]})"),
      Error);
  // Rank faults need a target rank.
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema":"msc-fault-plan-v1","rules":[{"kind":"crash"}]})"),
      Error);
}

TEST(FaultPlan, InjectorHonorsMaxCount) {
  FaultInjector injector(make_message_fault_plan(FaultKind::Drop, 1, /*max_count=*/2));
  int drops = 0;
  for (std::uint64_t seq = 0; seq < 6; ++seq)
    drops += injector.on_send(0, 1, 0, seq, 64).drop ? 1 : 0;
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(injector.injected(FaultKind::Drop), 2);
  EXPECT_EQ(injector.total_injected(), 2);
}

TEST(FaultPlan, InjectorIsDeterministic) {
  FaultPlan plan;
  plan.seed = 5;
  FaultRule r;
  r.kind = FaultKind::Drop;
  r.probability = 0.5;
  plan.rules.push_back(r);

  FaultInjector a(plan), b(plan);
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    EXPECT_EQ(a.on_send(0, 1, 2, seq, 64).drop, b.on_send(0, 1, 2, seq, 64).drop)
        << "seq " << seq;
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
}

// ---- fault-tolerant transport --------------------------------------------

comm::CommConfig quick_config(double timeout_ms) {
  comm::CommConfig cfg;
  cfg.timeout_ms = timeout_ms;
  cfg.seed = 1;
  return cfg;
}

TEST(SimMpiResilience, WaitTimeoutAbortNamesRankPeerAndTag) {
  comm::SimWorld world(2);
  world.set_comm_config(quick_config(2.0));
  try {
    world.run([](comm::RankCtx& ctx) {
      if (ctx.rank() != 0) return;  // peer never sends
      int buf = 0;
      auto r = ctx.irecv(1, /*tag=*/3, &buf, sizeof buf);
      ctx.wait(r);
    });
    FAIL() << "wait() on a silent peer must abort, not hang";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("peer 1"), std::string::npos) << what;
    EXPECT_NE(what.find("tag 3"), std::string::npos) << what;
    EXPECT_NE(what.find("retries"), std::string::npos) << what;
  }
}

TEST(SimMpiResilience, DroppedMessageIsRetransmitted) {
  FaultInjector injector(make_message_fault_plan(FaultKind::Drop, 1, 1));
  comm::SimWorld world(2);
  world.set_fault_injector(&injector);
  world.set_comm_config(quick_config(5.0));
  world.run([](comm::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const double v = 3.25;
      auto s = ctx.isend(1, 0, &v, sizeof v);
      ctx.wait(s);
    } else {
      double got = 0.0;
      auto r = ctx.irecv(0, 0, &got, sizeof got);
      ctx.wait(r);
      EXPECT_DOUBLE_EQ(got, 3.25);
    }
  });
  EXPECT_EQ(injector.injected(FaultKind::Drop), 1);
}

TEST(SimMpiResilience, CorruptionIsDetectedAndRecovered) {
  FaultInjector injector(make_message_fault_plan(FaultKind::Corrupt, 1, 1));
  const std::int64_t detected_before = prof::counter("resilience.corrupt_detected").value();
  comm::SimWorld world(2);
  world.set_fault_injector(&injector);
  world.set_comm_config(quick_config(5.0));
  world.run([](comm::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const double v = 1.5;
      auto s = ctx.isend(1, 0, &v, sizeof v);
      ctx.wait(s);
    } else {
      double got = 0.0;
      auto r = ctx.irecv(0, 0, &got, sizeof got);
      ctx.wait(r);
      EXPECT_DOUBLE_EQ(got, 1.5);  // the flipped-bit copy must never land
    }
  });
  EXPECT_EQ(injector.injected(FaultKind::Corrupt), 1);
  EXPECT_GE(prof::counter("resilience.corrupt_detected").value(), detected_before + 1);
}

TEST(SimMpiResilience, DuplicatesAreDiscardedInOrder) {
  FaultInjector injector(make_message_fault_plan(FaultKind::Duplicate, 1, 2));
  comm::SimWorld world(2);
  world.set_fault_injector(&injector);
  world.set_comm_config(quick_config(5.0));
  world.run([](comm::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int v : {10, 20, 30}) {
        auto s = ctx.isend(1, 0, &v, sizeof v);
        ctx.wait(s);
      }
    } else {
      for (int expect : {10, 20, 30}) {
        int got = 0;
        auto r = ctx.irecv(0, 0, &got, sizeof got);
        ctx.wait(r);
        EXPECT_EQ(got, expect);
      }
    }
  });
  EXPECT_EQ(injector.injected(FaultKind::Duplicate), 2);
}

TEST(SimMpiResilience, DelayedMessageStillArrives) {
  FaultPlan plan;
  plan.seed = 1;
  FaultRule r;
  r.kind = FaultKind::Delay;
  r.delay_ms = 4.0;
  r.max_count = 1;
  plan.rules.push_back(r);
  FaultInjector injector(plan);
  comm::SimWorld world(2);
  world.set_fault_injector(&injector);
  world.set_comm_config(quick_config(20.0));
  world.run([](comm::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const int v = 7;
      auto s = ctx.isend(1, 0, &v, sizeof v);
      ctx.wait(s);
    } else {
      int got = 0;
      auto r = ctx.irecv(0, 0, &got, sizeof got);
      ctx.wait(r);
      EXPECT_EQ(got, 7);
    }
  });
  EXPECT_EQ(injector.injected(FaultKind::Delay), 1);
}

// Satellite regression: a crashed rank must fail the survivors' barrier
// with a diagnosable RankFailed instead of wedging the arrival count.
TEST(SimMpiResilience, BarrierRaisesRankFailedOnSurvivors) {
  comm::SimWorld world(2);
  world.set_comm_config(quick_config(50.0));
  std::atomic<int> survivor_saw_failed_peer{-1};
  EXPECT_THROW(
      world.run([&](comm::RankCtx& ctx) {
        if (ctx.rank() == 1) {
          ctx.world().declare_failed(1);
          throw comm::RankCrashed("injected crash", 1, 0);
        }
        try {
          ctx.barrier();
          FAIL() << "barrier must not complete with a failed rank";
        } catch (const comm::RankFailed& e) {
          survivor_saw_failed_peer = e.failed_peer();
          throw;
        }
      }),
      comm::RankCrashed);  // run() rethrows the root cause, not the cascade
  EXPECT_EQ(survivor_saw_failed_peer.load(), 1);
  EXPECT_TRUE(world.rank_failed(1));
  EXPECT_EQ(world.first_failed_rank(), 1);
}

TEST(SimMpiResilience, FaultFreeWorldStaysOnTheFastPath) {
  comm::SimWorld world(2);
  // No injector, no timeout: the envelope/retransmit machinery must be off.
  if (world.comm_config().timeout_ms <= 0.0) {
    EXPECT_FALSE(world.resilient());
    EXPECT_DOUBLE_EQ(world.effective_timeout_ms(), 0.0);
  }
  FaultInjector injector(make_message_fault_plan(FaultKind::Drop, 1, 1));
  world.set_fault_injector(&injector);
  EXPECT_TRUE(world.resilient());
  EXPECT_GT(world.effective_timeout_ms(), 0.0);  // chaos can never deadlock
}

// ---- checkpoint/restart --------------------------------------------------

Checkpoint tiny_checkpoint(int rank, std::int64_t step, std::byte fill) {
  Checkpoint ck;
  ck.rank = rank;
  ck.step = step;
  ck.slots.push_back(std::vector<std::byte>(32, fill));
  ck.slots.push_back(std::vector<std::byte>(32, ~fill));
  ck.checksum = ck.compute_checksum();
  return ck;
}

TEST(Checkpoint, StoreRoundTripAndConsistentCut) {
  CheckpointStore store(/*keep_per_rank=*/2);
  EXPECT_EQ(store.consistent_step(2), -1);

  store.save(tiny_checkpoint(0, 2, std::byte{0x11}));
  EXPECT_EQ(store.consistent_step(2), -1);  // rank 1 has nothing yet
  store.save(tiny_checkpoint(1, 2, std::byte{0x22}));
  EXPECT_EQ(store.consistent_step(2), 2);

  store.save(tiny_checkpoint(0, 4, std::byte{0x33}));
  EXPECT_EQ(store.consistent_step(2), 2);  // rank 1 is still at 2
  store.save(tiny_checkpoint(1, 4, std::byte{0x44}));
  EXPECT_EQ(store.consistent_step(2), 4);

  const auto ck = store.load(0, 2);
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->slots[0][0], std::byte{0x11});
  EXPECT_EQ(ck->checksum, ck->compute_checksum());
  EXPECT_FALSE(store.load(0, 99).has_value());
  EXPECT_GE(store.checkpoints_written(), 4);
  EXPECT_GT(store.bytes_written(), 0);

  // keep_per_rank=2: a third step evicts the oldest and the old cut is gone.
  store.save(tiny_checkpoint(0, 6, std::byte{0x55}));
  EXPECT_FALSE(store.load(0, 2).has_value());

  store.clear();
  EXPECT_EQ(store.consistent_step(2), -1);
}

TEST(Checkpoint, CorruptImageIsRejected) {
  auto ck = tiny_checkpoint(0, 1, std::byte{0x7f});
  ck.slots[0][3] ^= std::byte{0x01};  // bit rot after the checksum was taken
  CheckpointStore store;
  EXPECT_THROW(store.save(ck), Error);
}

TEST(Checkpoint, GridSnapshotRestoreIsBitExact) {
  auto tensor = ir::make_sp_tensor("u", ir::DataType::f64, {6, 5}, 1, 2);
  exec::GridStorage<double> grid(tensor);
  grid.fill_random(0, 42);
  grid.fill_random(1, 43);

  const Checkpoint ck = snapshot_grid(0, 3, grid);
  EXPECT_EQ(ck.step, 3);
  ASSERT_EQ(static_cast<int>(ck.slots.size()), grid.slots());

  exec::GridStorage<double> other(tensor);
  other.fill_random(0, 77);  // deliberately different content
  other.fill_random(1, 78);
  restore_grid(ck, other);
  const std::size_t bytes = static_cast<std::size_t>(grid.padded_points()) * sizeof(double);
  for (int s = 0; s < grid.slots(); ++s)
    EXPECT_EQ(std::memcmp(grid.slot_data(s), other.slot_data(s), bytes), 0) << "slot " << s;
}

TEST(Checkpoint, FileRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "msc_ckpt_test";
  fs::create_directories(dir);
  const std::string path = (dir / "rank0.ckpt").string();

  const Checkpoint ck = tiny_checkpoint(3, 9, std::byte{0xab});
  write_checkpoint_file(path, ck);
  const Checkpoint back = read_checkpoint_file(path);
  EXPECT_EQ(back.rank, 3);
  EXPECT_EQ(back.step, 9);
  EXPECT_EQ(back.checksum, ck.checksum);
  ASSERT_EQ(back.slots.size(), ck.slots.size());
  for (std::size_t s = 0; s < ck.slots.size(); ++s) EXPECT_EQ(back.slots[s], ck.slots[s]);

  // A truncated file must be rejected, not silently restored.
  fs::resize_file(path, 10);
  EXPECT_THROW(read_checkpoint_file(path), Error);
  EXPECT_THROW(read_checkpoint_file((dir / "absent.ckpt").string()), Error);
}

TEST(Checkpoint, CkptEveryFromEnv) {
  ::unsetenv("MSC_CKPT_EVERY");
  EXPECT_EQ(ckpt_every_from_env(7), 7);
  ::setenv("MSC_CKPT_EVERY", "5", 1);
  EXPECT_EQ(ckpt_every_from_env(7), 5);
  ::setenv("MSC_CKPT_EVERY", "0", 1);
  EXPECT_EQ(ckpt_every_from_env(7), 0);  // explicit off
  ::setenv("MSC_CKPT_EVERY", "junk", 1);
  EXPECT_EQ(ckpt_every_from_env(7), 7);
  ::unsetenv("MSC_CKPT_EVERY");
}

TEST(CommConfig, FromEnv) {
  ::setenv("MSC_COMM_TIMEOUT_MS", "50", 1);
  EXPECT_DOUBLE_EQ(comm::comm_config_from_env().timeout_ms, 50.0);
  ::unsetenv("MSC_COMM_TIMEOUT_MS");
  EXPECT_DOUBLE_EQ(comm::comm_config_from_env().timeout_ms, 0.0);
}

// ---- chaos runner --------------------------------------------------------

TEST(Chaos, MatrixShapes) {
  const auto smoke = chaos_matrix(true, 1);
  const auto full = chaos_matrix(false, 1);
  EXPECT_GT(smoke.size(), 0u);
  EXPECT_GT(full.size(), smoke.size());
  for (const auto& sc : smoke) EXPECT_FALSE(sc.label().empty());
  // Smoke keeps the high-signal kinds (a crash must be among them so CI
  // exercises restart, not just retransmission).
  bool has_crash = false;
  for (const auto& sc : smoke) has_crash |= sc.kind == FaultKind::Crash;
  EXPECT_TRUE(has_crash);
}

TEST(Chaos, CrashScenarioRestartsAndRecoversBitExact) {
  ChaosScenario sc;
  sc.workload = "3d7pt_star";
  sc.nranks = 2;
  sc.kind = FaultKind::Crash;
  sc.seed = 1;
  const ChaosResult res = run_chaos_scenario(sc);
  EXPECT_TRUE(res.ok) << res.note;
  EXPECT_TRUE(res.bit_exact) << res.note;
  EXPECT_GE(res.attempts, 2) << "a crash must force at least one restart";
  EXPECT_GE(res.faults_injected, 1);
  EXPECT_GE(res.checkpoints, 1);
  EXPECT_GE(res.restores, 1) << "recovery must come from the checkpoint cut";
}

TEST(Chaos, DropScenarioRecoversWithoutRestart) {
  ChaosScenario sc;
  sc.workload = "heat2d";
  sc.nranks = 2;
  sc.kind = FaultKind::Drop;
  sc.seed = 1;
  const ChaosResult res = run_chaos_scenario(sc);
  EXPECT_TRUE(res.ok) << res.note;
  EXPECT_TRUE(res.bit_exact) << res.note;
  EXPECT_EQ(res.attempts, 1) << "transport faults are absorbed in-flight";
  EXPECT_GE(res.faults_injected, 1);
  EXPECT_GE(res.retries, 1) << "a dropped halo must be re-requested";
}

TEST(Chaos, MatrixIncludesDiagonalEnvelopeScenarios) {
  const auto full = chaos_matrix(false, 1);
  int diag = 0;
  for (const auto& sc : full)
    if (sc.diagonal) {
      ++diag;
      EXPECT_NE(sc.label().find(".diag"), std::string::npos);
      EXPECT_TRUE(sc.kind == FaultKind::Drop || sc.kind == FaultKind::Corrupt ||
                  sc.kind == FaultKind::Delay)
          << "diagonal targeting is for message kinds only";
    }
  EXPECT_GT(diag, 0) << "full matrix must cover corner-envelope faults";
}

TEST(Chaos, DiagonalDropTargetsCornerTagsAndRecovers) {
  // Drop aimed exclusively at the plan exchanger's corner tags: the
  // retransmit layer must recover it and the grid must match the oracle
  // bit for bit — a corner-phase recovery bug cannot hide behind faces.
  ChaosScenario sc;
  sc.workload = "heat2d";
  sc.nranks = 2;
  sc.kind = FaultKind::Drop;
  sc.seed = 1;
  sc.diagonal = true;
  const ChaosResult res = run_chaos_scenario(sc);
  EXPECT_TRUE(res.ok) << res.note;
  EXPECT_TRUE(res.bit_exact) << res.note;
  EXPECT_EQ(res.attempts, 1) << "transport faults are absorbed in-flight";
  EXPECT_GE(res.faults_injected, 1) << "no corner message was ever targeted";
}

TEST(Chaos, ReportSchema) {
  ChaosScenario sc;
  sc.kind = FaultKind::Duplicate;
  std::vector<ChaosResult> results = {run_chaos_scenario(sc)};
  const auto doc = chaos_report(results);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "msc-chaos-v1");
  EXPECT_EQ(doc.find("total")->as_integer(), 1);
  EXPECT_EQ(doc.find("passed")->as_integer(), 1);
  ASSERT_TRUE(doc.find("scenarios")->is_array());
}

}  // namespace
}  // namespace msc::resilience
