// Golden-snapshot gate: emitted codegen sources must match the reviewed
// snapshots under tests/golden/ byte for byte.  On intentional codegen
// changes run `msc-conform --update-golden tests/golden` and review the
// snapshot diff as part of the commit.

#include <gtest/gtest.h>

#include <filesystem>

#include "check/golden.hpp"

#ifndef MSC_GOLDEN_DIR
#error "MSC_GOLDEN_DIR must point at tests/golden"
#endif

namespace msc::check {
namespace {

TEST(Golden, MatrixCoversAllBackends) {
  const auto& matrix = golden_matrix();
  ASSERT_EQ(matrix.size(), 8u);  // {3d7pt_star, heat2d} x {c, openmp, sunway, openacc}
  int sunway = 0, heat = 0;
  for (const auto& gc : matrix) {
    sunway += gc.target == "sunway" ? 1 : 0;
    heat += gc.program == "heat2d" ? 1 : 0;
  }
  EXPECT_EQ(sunway, 2);
  EXPECT_EQ(heat, 4);
}

TEST(Golden, EmissionIsDeterministic) {
  const GoldenCase gc{"3d7pt_star", "sunway"};
  EXPECT_EQ(emit_golden(gc), emit_golden(gc));
}

TEST(Golden, SnapshotsMatchEmittedSources) {
  const std::string dir = MSC_GOLDEN_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir))
      << "no golden directory; run msc-conform --update-golden " << dir;
  const auto diffs = check_golden(dir);
  for (const auto& d : diffs)
    ADD_FAILURE() << d.kind << " " << d.path << ": " << d.detail
                  << "\n(if the codegen change is intentional, run msc-conform "
                     "--update-golden and review the snapshot diff)";
  EXPECT_TRUE(diffs.empty());
}

}  // namespace
}  // namespace msc::check
