// Textual-frontend tests: spec parsing, program construction, error
// reporting with line numbers, and end-to-end execution of a spec-built
// program against the serial reference.

#include <gtest/gtest.h>

#include "frontend/spec.hpp"
#include "support/error.hpp"

namespace msc::frontend {
namespace {

const char* k3d7ptSpec = R"(# 3-D 7-point, two time dependencies
name  spec3d7pt
grid  20 20 20
halo  1
dtype f64
point  0 0 0   0.4
point  0 0 -1  0.1
point  0 0 1   0.1
point  0 -1 0  0.1
point  0 1 0   0.1
point -1 0 0   0.1
point  1 0 0   0.1
term  -1 0.6
term  -2 0.4
tile  4 4 8
parallel 4
mpi   2 2 2
)";

TEST(SpecParse, FullSpecRoundTrip) {
  const auto spec = parse_spec(k3d7ptSpec);
  EXPECT_EQ(spec.name, "spec3d7pt");
  ASSERT_EQ(spec.grid.size(), 3u);
  EXPECT_EQ(spec.grid[0], 20);
  EXPECT_EQ(spec.halo, 1);
  EXPECT_EQ(spec.dtype, ir::DataType::f64);
  EXPECT_EQ(spec.points.size(), 7u);
  EXPECT_DOUBLE_EQ(spec.points[0].coeff, 0.4);
  EXPECT_EQ(spec.points[1].offset[2], -1);
  ASSERT_EQ(spec.terms.size(), 2u);
  EXPECT_EQ(spec.terms[1].offset, -2);
  EXPECT_EQ(spec.tile[2], 8);
  EXPECT_EQ(spec.parallel_threads, 4);
  EXPECT_EQ(spec.mpi, (std::vector<int>{2, 2, 2}));
}

TEST(SpecParse, DefaultsAndComments) {
  const auto spec = parse_spec("name x\ngrid 8 8  # 2-D\npoint 0 0 1.0\n");
  EXPECT_EQ(spec.terms.size(), 1u);  // implicit term -1 1.0
  EXPECT_EQ(spec.terms[0].offset, -1);
  EXPECT_EQ(spec.dtype, ir::DataType::f64);
  EXPECT_EQ(spec.tile[0], 0);
}

TEST(SpecParse, ErrorsCarryLineNumbers) {
  try {
    parse_spec("name x\ngrid 8 8\nbogus 1 2\n");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SpecParse, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_spec("grid 8 8\npoint 0 0 1.0\n"), Error);          // no name
  EXPECT_THROW(parse_spec("name x\npoint 0 0 1.0\n"), Error);            // no grid
  EXPECT_THROW(parse_spec("name x\ngrid 8 8\n"), Error);                 // no points
  EXPECT_THROW(parse_spec("name x\ngrid 8 8\npoint 0 1.0\n"), Error);    // arity
  EXPECT_THROW(parse_spec("name x\ngrid 8 8\ndtype f16\npoint 0 0 1\n"), Error);
  EXPECT_THROW(parse_spec("name x\ngrid 8 8\npoint 0 zz 1.0\n"), Error); // bad int
}

TEST(SpecBuild, ProgramRunsAndValidates) {
  auto prog = program_from_spec(k3d7ptSpec);
  EXPECT_EQ(prog->stencil().time_window(), 3);
  EXPECT_EQ(prog->stencil().max_radius(), 1);
  EXPECT_EQ(prog->mpi_shape().processes(), 8);
  EXPECT_EQ(prog->primary_schedule().parallel_threads(), 4);
  prog->input(dsl::GridRef(prog->stencil().state()), 11);
  EXPECT_LT(prog->relative_error_vs_reference(1, 4), 1e-10);
}

TEST(SpecBuild, GeneratesAllTargets) {
  auto prog = program_from_spec(k3d7ptSpec);
  for (const auto* target : {"c", "openmp", "sunway", "openacc"})
    EXPECT_FALSE(prog->compile_to_source_code(target).empty()) << target;
}

TEST(SpecBuild, ParallelWithoutTileRejected) {
  EXPECT_THROW(program_from_spec("name x\ngrid 8 8\npoint 0 0 1.0\nparallel 4\n"), Error);
}

TEST(SpecBuild, TwoDimensionalSpecWorks) {
  auto prog = program_from_spec(
      "name heat2d\ngrid 16 16\nhalo 1\npoint 0 0 0.6\npoint 0 -1 0.1\npoint 0 1 0.1\n"
      "point -1 0 0.1\npoint 1 0 0.1\ntile 8 8\n");
  prog->input(dsl::GridRef(prog->stencil().state()), 3);
  EXPECT_LT(prog->relative_error_vs_reference(1, 3), 1e-12);
}

}  // namespace
}  // namespace msc::frontend
