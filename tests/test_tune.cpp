// Auto-tuner tests: regression fit quality, simulated-annealing behavior,
// factorization enumeration, and end-to-end tuning improvement (the
// mechanism behind the paper's Fig. 11 / 3.28x claim).

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "tune/anneal.hpp"
#include "tune/regression.hpp"
#include "tune/tuner.hpp"
#include "workload/stencils.hpp"

namespace msc::tune {
namespace {

TEST(Regression, RecoversExactLinearModel) {
  // y = 3 + 2*x1 - 0.5*x2
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(4);
  for (int n = 0; n < 50; ++n) {
    const double x1 = rng.next_real(0, 10), x2 = rng.next_real(0, 10);
    X.push_back({1.0, x1, x2});
    y.push_back(3.0 + 2.0 * x1 - 0.5 * x2);
  }
  LinearRegression model;
  model.fit(X, y);
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], 2.0, 1e-6);
  EXPECT_NEAR(model.weights()[2], -0.5, 1e-6);
  EXPECT_NEAR(model.r_squared(X, y), 1.0, 1e-9);
  EXPECT_NEAR(model.predict({1.0, 4.0, 2.0}), 10.0, 1e-6);
}

TEST(Regression, ToleratesNoise) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(9);
  for (int n = 0; n < 200; ++n) {
    const double x = rng.next_real(0, 100);
    X.push_back({1.0, x});
    y.push_back(5.0 + 0.25 * x + rng.next_real(-0.1, 0.1));
  }
  LinearRegression model;
  model.fit(X, y);
  EXPECT_GT(model.r_squared(X, y), 0.99);
}

TEST(Regression, RejectsBadShapes) {
  LinearRegression model;
  EXPECT_THROW(model.fit({}, {}), Error);
  EXPECT_THROW(model.fit({{1.0, 2.0}}, {1.0}), Error);  // fewer samples than features
  EXPECT_THROW(model.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), Error);
}

TEST(Regression, ConstantTargetsScoreFiniteRSquared) {
  // Constant y: ss_tot is 0 and the naive 1 - ss_res/ss_tot would be NaN
  // (or -inf).  A model that reproduces the constant must score 1.
  std::vector<std::vector<double>> X = {{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  std::vector<double> y = {5.0, 5.0, 5.0, 5.0};
  LinearRegression model;
  model.fit(X, y);
  const double r2 = model.r_squared(X, y);
  EXPECT_TRUE(std::isfinite(r2));
  EXPECT_DOUBLE_EQ(r2, 1.0);
}

TEST(Regression, ConstantTargetsWithRealResidualsScoreZero) {
  // A deliberately wrong model evaluated on constant targets: residuals are
  // large, so the fit explains nothing — 0, not NaN and not a flattering 1.
  std::vector<std::vector<double>> X = {{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}};
  std::vector<double> y_fit = {0.0, 10.0, 20.0};
  LinearRegression model;
  model.fit(X, y_fit);  // learns y = 10*x
  const std::vector<double> y_const = {5.0, 5.0, 5.0};
  const double r2 = model.r_squared(X, y_const);
  EXPECT_TRUE(std::isfinite(r2));
  EXPECT_DOUBLE_EQ(r2, 0.0);
}

TEST(Anneal, FindsMinimumOfConvexFunction) {
  // Minimize (x - 17)^2 over integers via +-1 moves.
  const auto result = anneal<int>(
      100, [](const int& x) { return static_cast<double>((x - 17) * (x - 17)); },
      [](const int& x, Rng& rng) { return rng.next_double() < 0.5 ? x - 1 : x + 1; },
      {.iterations = 20000, .initial_temperature = 1.0, .cooling = 0.999, .seed = 5});
  EXPECT_EQ(result.best, 17);
  EXPECT_DOUBLE_EQ(result.best_objective, 0.0);
}

TEST(Anneal, TraceIsMonotoneDecreasing) {
  const auto result = anneal<int>(
      50, [](const int& x) { return std::fabs(static_cast<double>(x)); },
      [](const int& x, Rng& rng) { return x + static_cast<int>(rng.next_int(-3, 3)); },
      {.iterations = 5000, .initial_temperature = 0.5, .cooling = 0.999, .seed = 2});
  for (std::size_t n = 1; n < result.trace.size(); ++n)
    EXPECT_LT(result.trace[n].objective, result.trace[n - 1].objective);
  EXPECT_GE(result.converged_at, 0);
}

TEST(Anneal, DeterministicForFixedSeed) {
  const auto obj = [](const int& x) { return static_cast<double>(x * x); };
  const auto nb = [](const int& x, Rng& rng) { return x + static_cast<int>(rng.next_int(-2, 2)); };
  const auto a = anneal<int>(40, obj, nb, {.iterations = 1000, .seed = 3});
  const auto b = anneal<int>(40, obj, nb, {.iterations = 1000, .seed = 3});
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(Anneal, ObserverSeesEveryProposedMove) {
  std::int64_t calls = 0, accepted = 0, improved = 0;
  double last_temperature = -1.0;
  const auto result = anneal<int>(
      50, [](const int& x) { return static_cast<double>(x * x); },
      [](const int& x, Rng& rng) { return x + static_cast<int>(rng.next_int(-2, 2)); },
      {.iterations = 500, .initial_temperature = 0.5, .cooling = 0.999, .seed = 4},
      [&](const AnnealSample<int>& s) {
        EXPECT_EQ(s.iteration, calls + 1);  // every iteration observed, in order
        EXPECT_GE(s.objective, 0.0);
        if (last_temperature >= 0.0) {
          EXPECT_LE(s.temperature, last_temperature);
        }
        last_temperature = s.temperature;
        ++calls;
        if (s.accepted) ++accepted;
        if (s.improved_best) {
          ++improved;
          EXPECT_TRUE(s.accepted);  // improvements are a subset of accepts
          EXPECT_EQ(s.candidate * s.candidate, static_cast<int>(s.objective));
        }
      });
  EXPECT_EQ(calls, 500);
  EXPECT_GT(accepted, 0);
  EXPECT_GT(improved, 0);
  EXPECT_EQ(result.best, 0);
}

TEST(Factorizations, EnumeratesAllOrderedTriples) {
  const auto f = factorizations(8, 3);
  // 8 = 2^3: ordered triples of factors = C(3+2,2) = 10.
  EXPECT_EQ(f.size(), 10u);
  for (const auto& dims : f) {
    int p = 1;
    for (int d : dims) p *= d;
    EXPECT_EQ(p, 8);
  }
}

TEST(Factorizations, OneDimension) {
  const auto f = factorizations(12, 1);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0][0], 12);
}

class TunerFixture : public ::testing::Test {
 protected:
  TuneConfig config() {
    TuneConfig cfg;
    cfg.processes = 8;
    cfg.global = {512, 128, 128};  // scaled-down Fig. 11 domain
    cfg.timesteps = 100;
    cfg.train_samples = 32;
    cfg.sa_iterations = 3000;
    cfg.seed = 11;
    return cfg;
  }
};

TEST_F(TunerFixture, TuningImprovesOverNaiveConfig) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {512, 128, 128});
  const auto result = tune(prog->stencil(), machine::sunway_cg(),
                           machine::profile_msc_sunway(), comm::sunway_network(), config());
  // Paper §5.4: auto-tuning improved the stencil 3.28x; require a clear
  // improvement and a usable model fit.
  EXPECT_GT(result.speedup(), 1.5);
  EXPECT_GT(result.model_r2, 0.9);
  EXPECT_FALSE(result.trace.empty());
  EXPECT_LE(result.best_seconds, result.initial_seconds);
}

TEST_F(TunerFixture, TunedTileRespectsLocalExtent) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {512, 128, 128});
  const auto result = tune(prog->stencil(), machine::sunway_cg(),
                           machine::profile_msc_sunway(), comm::sunway_network(), config());
  comm::CartDecomp dec(result.best.mpi_dims, {512, 128, 128});
  for (int d = 0; d < 3; ++d) {
    EXPECT_GE(result.best.tile[static_cast<std::size_t>(d)], 1);
    EXPECT_LE(result.best.tile[static_cast<std::size_t>(d)], dec.local_extent(0, d));
  }
}

TEST_F(TunerFixture, DeterministicForFixedSeed) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {512, 128, 128});
  const auto a = tune(prog->stencil(), machine::sunway_cg(), machine::profile_msc_sunway(),
                      comm::sunway_network(), config());
  const auto b = tune(prog->stencil(), machine::sunway_cg(), machine::profile_msc_sunway(),
                      comm::sunway_network(), config());
  EXPECT_EQ(a.best.mpi_dims, b.best.mpi_dims);
  EXPECT_EQ(a.best.tile, b.best.tile);
  EXPECT_DOUBLE_EQ(a.best_seconds, b.best_seconds);
}

TEST_F(TunerFixture, ExplainJsonRoundTripsAndAttributesCost) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {512, 128, 128});
  const auto result = tune(prog->stencil(), machine::sunway_cg(),
                           machine::profile_msc_sunway(), comm::sunway_network(), config());
  ASSERT_EQ(result.model_weights.size(), feature_names().size());
  ASSERT_EQ(result.best_features.size(), feature_names().size());

  // The explain document must survive dump -> parse (the acceptance check).
  using workload::Json;
  const Json doc = Json::parse(explain_tune_json(result).dump());
  EXPECT_EQ(doc.find("schema")->as_string(), "msc-tune-explain-v1");
  EXPECT_DOUBLE_EQ(doc.find("best_seconds")->as_number(), result.best_seconds);
  EXPECT_DOUBLE_EQ(doc.find("speedup")->as_number(), result.speedup());

  const Json* feats = doc.find("features");
  ASSERT_NE(feats, nullptr);
  ASSERT_EQ(feats->elements().size(), feature_names().size());
  double share_sum = 0.0, predicted = 0.0;
  for (std::size_t i = 0; i < feats->elements().size(); ++i) {
    const Json& f = feats->elements()[i];
    EXPECT_EQ(f.find("name")->as_string(), feature_names()[i]);
    EXPECT_DOUBLE_EQ(f.find("contribution_seconds")->as_number(),
                     f.find("weight")->as_number() * f.find("value")->as_number());
    share_sum += f.find("share")->as_number();
    predicted += f.find("contribution_seconds")->as_number();
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);  // shares partition the absolute total
  // Contributions sum to the model's prediction for the winner, which the
  // (high-R^2) model keeps close to the re-measured best time.
  EXPECT_NEAR(predicted, result.best_seconds, 0.25 * result.best_seconds);

  const Json* best = doc.find("best");
  ASSERT_NE(best, nullptr);
  ASSERT_EQ(best->find("mpi_dims")->elements().size(), result.best.mpi_dims.size());
  EXPECT_EQ(best->find("tile")->elements()[0].as_integer(), result.best.tile[0]);
  // Sunway is cache-less: temporal fusion must stay off and say so.
  EXPECT_EQ(best->find("time_tile")->as_integer(), 1);
}

TEST(TemporalTrafficScale, AmortisesColdReadAndChargesSkewOverlap) {
  // No fusion = full per-step traffic.
  EXPECT_DOUBLE_EQ(temporal_traffic_scale(1, 1, 16), 1.0);
  // Depth-8 window over 16-row wedges, radius 1: one cold read amortised
  // over 8 steps plus 7 skew rows re-read per 16-row wedge.
  EXPECT_DOUBLE_EQ(temporal_traffic_scale(8, 1, 16), 1.0 / 8.0 + 7.0 / 16.0);
  // Wider wedges pay proportionally less skew overlap.
  EXPECT_LT(temporal_traffic_scale(8, 1, 64), temporal_traffic_scale(8, 1, 8));
  // A skew overlap wider than the wedge clamps at "no saving", never >1.
  EXPECT_DOUBLE_EQ(temporal_traffic_scale(4, 8, 2), 1.0);
}

TEST_F(TunerFixture, TimeTileSavesOnlyExposedMemoryTime) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {512, 128, 128});
  const auto cfg = config();
  TuneParams p;
  p.mpi_dims = {8, 1, 1};
  p.tile = {4, 64, 64};
  const double per_step = measure_config(prog->stencil(), machine::matrix_sn(),
                                         machine::profile_msc_cpu(), comm::sunway_network(),
                                         cfg, p);
  p.time_tile = 8;
  const double fused = measure_config(prog->stencil(), machine::matrix_sn(),
                                      machine::profile_msc_cpu(), comm::sunway_network(),
                                      cfg, p);
  // Fusion can only shave exposed memory time — never below compute time,
  // never negative, and monotonically no worse than per-step.
  EXPECT_LE(fused, per_step);
  EXPECT_GT(fused, 0.0);
  // Degenerate wedge (skew overlap >= width) saves nothing.
  p.tile[0] = 1;
  p.time_tile = 4;
  const double degenerate_fused = measure_config(prog->stencil(), machine::matrix_sn(),
                                                 machine::profile_msc_cpu(),
                                                 comm::sunway_network(), cfg, p);
  p.time_tile = 1;
  const double degenerate = measure_config(prog->stencil(), machine::matrix_sn(),
                                           machine::profile_msc_cpu(),
                                           comm::sunway_network(), cfg, p);
  EXPECT_DOUBLE_EQ(degenerate_fused, degenerate);
}

}  // namespace
}  // namespace msc::tune
