// Tests of the algebraic simplification pass and its integration into the
// DSL kernel construction, plus the unroll primitive and the Sunway
// pipeline's double-buffer switch.

#include <gtest/gtest.h>

#include "dsl/program.hpp"
#include "exec/grid.hpp"
#include "ir/printer.hpp"
#include "ir/simplify.hpp"
#include "sunway/cg_sim.hpp"
#include "support/error.hpp"
#include "workload/stencils.hpp"

namespace msc {
namespace {

using ir::BinaryOp;
using ir::Expr;

struct SimplifyFixture : ::testing::Test {
  ir::Tensor B = ir::make_sp_tensor("B", ir::DataType::f64, {8, 8}, 1, 3);
  Expr acc(std::int64_t dj = 0, std::int64_t di = 0) {
    return ir::make_access(B, {{"j", dj}, {"i", di}});
  }
};

TEST_F(SimplifyFixture, FoldsConstants) {
  auto e = ir::make_binary(BinaryOp::Mul, ir::make_float(2.0),
                           ir::make_binary(BinaryOp::Add, ir::make_float(1.5), ir::make_float(0.5)));
  const auto s = ir::simplify(e);
  EXPECT_TRUE(ir::is_const(s, 4.0));
}

TEST_F(SimplifyFixture, IdentityRules) {
  EXPECT_EQ(ir::to_string(ir::simplify(ir::make_binary(BinaryOp::Mul, ir::make_float(1.0), acc()))),
            "B[j,i]");
  EXPECT_EQ(ir::to_string(ir::simplify(ir::make_binary(BinaryOp::Add, acc(), ir::make_float(0.0)))),
            "B[j,i]");
  EXPECT_EQ(ir::to_string(ir::simplify(ir::make_binary(BinaryOp::Sub, acc(), ir::make_float(0.0)))),
            "B[j,i]");
  EXPECT_EQ(ir::to_string(ir::simplify(ir::make_binary(BinaryOp::Div, acc(), ir::make_float(1.0)))),
            "B[j,i]");
}

TEST_F(SimplifyFixture, MulByZeroCollapses) {
  auto e = ir::make_binary(BinaryOp::Mul, ir::make_float(0.0), acc(0, -1));
  EXPECT_TRUE(ir::is_const(ir::simplify(e), 0.0));
}

TEST_F(SimplifyFixture, DoubleNegation) {
  auto e = ir::make_unary(ir::UnaryOp::Neg, ir::make_unary(ir::UnaryOp::Neg, acc()));
  EXPECT_EQ(ir::to_string(ir::simplify(e)), "B[j,i]");
}

TEST_F(SimplifyFixture, ConstDivByZeroThrows) {
  auto e = ir::make_binary(BinaryOp::Div, ir::make_float(1.0), ir::make_float(0.0));
  EXPECT_THROW(ir::simplify(e), Error);
}

TEST_F(SimplifyFixture, NoRuleReturnsSamePointer) {
  auto e = ir::make_binary(BinaryOp::Add, acc(0, -1), acc(0, 1));
  EXPECT_EQ(ir::simplify(e), e);
}

TEST_F(SimplifyFixture, RecursesThroughCalls) {
  auto inner = ir::make_binary(BinaryOp::Add, ir::make_float(1.0), ir::make_float(3.0));
  auto e = ir::make_call("sqrt", {inner}, ir::DataType::f64);
  const auto s = ir::simplify(e);
  ASSERT_EQ(s->kind, ir::ExprKind::CallFunc);
  EXPECT_TRUE(ir::is_const(static_cast<const ir::CallFuncExpr&>(*s).args[0], 4.0));
}

TEST(SimplifyInDsl, KernelStatsReflectFolding) {
  // 1*B(j,i) + 0*B(j,i-1) folds to a single access: one read, zero ops.
  dsl::Program prog("fold");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  auto B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("k", {j, i},
                        dsl::ExprH(1.0) * B(j, i) + dsl::ExprH(0.0) * B(j, i - 1));
  EXPECT_EQ(k.ir().stats().points_read, 1);
  EXPECT_EQ(k.ir().stats().ops.plus_minus_times(), 0);
  EXPECT_EQ(k.ir().stats().max_radius, 0);
}

TEST(Unroll, PrimitiveValidatesAndMarks) {
  const auto& info = workload::benchmark("2d9pt_box");
  auto prog = workload::make_program(info, ir::DataType::f64, {32, 32, 0});
  auto& k = prog->primary_kernel();
  EXPECT_THROW(k.unroll("i", 1), Error);     // factor too small
  EXPECT_THROW(k.unroll("i", 64), Error);    // exceeds trip count (32)
  EXPECT_THROW(k.unroll("zz", 4), Error);    // unknown axis
  k.unroll("i", 4);
  EXPECT_THROW(k.unroll("i", 4), Error);     // already unrolled
  EXPECT_EQ(k.sched().axes().back().unroll, 4);
}

TEST(Unroll, CodegenEmitsPragma) {
  const auto& info = workload::benchmark("2d9pt_box");
  auto prog = workload::make_program(info, ir::DataType::f64, {32, 32, 0});
  workload::apply_msc_schedule(*prog, info, "matrix", {8, 8, 0});
  prog->primary_kernel().unroll("i_inner", 4);
  const auto src = prog->compile_to_source_code("openmp");
  EXPECT_NE(src.find("#pragma GCC unroll 4"), std::string::npos);
  EXPECT_NE(src.find("#pragma omp simd"), std::string::npos);
}

TEST(DoubleBuffer, OverlapNeverSlower) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {24, 24, 24});
  workload::apply_msc_schedule(*prog, info, "sunway", {2, 8, 12});
  auto run_mode = [&](bool overlap) {
    exec::GridStorage<double> g(prog->stencil().state());
    for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 2);
    return sunway::run_cg_sim(prog->stencil(), prog->primary_schedule(), g, 1, 3,
                              exec::Boundary::ZeroHalo, {}, machine::sunway_cg(), overlap);
  };
  const auto blocking = run_mode(false);
  const auto overlapped = run_mode(true);
  EXPECT_LE(overlapped.seconds, blocking.seconds);
  EXPECT_GT(blocking.seconds, 0.0);
}

}  // namespace
}  // namespace msc
