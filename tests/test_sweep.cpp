// Unit + differential tests of the compiled row-sweep engine (exec/sweep):
// lowering coverage/clamping, bit-exact agreement between the retired
// per-point interpreter and the compiled sweep across random conformance
// cases, the wide-kernel (row-accumulator) formulation, and the row-based
// grid primitives' order guarantees.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "check/case_gen.hpp"
#include "check/golden.hpp"
#include "dsl/program.hpp"
#include "exec/executor.hpp"
#include "exec/grid.hpp"
#include "exec/sweep.hpp"
#include "exec/temporal_sweep.hpp"
#include "support/rng.hpp"

namespace msc::exec {
namespace {

// ---- lowering ------------------------------------------------------------

TEST(LowerSweep, TilesCoverExtentExactlyOnce) {
  auto prog = std::make_unique<dsl::Program>("cov");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 13, 17);
  auto& k = prog->kernel("k", {j, i}, dsl::ExprH(0.5) * B(j, i));
  k.tile({4, 5}).reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
  prog->def_stencil("st", B, k[prog->t() - 1]);

  const SweepPlan plan = lower_sweep(build_loop_plan(prog->primary_schedule()));
  // 13/4 -> 4 tiles, 17/5 -> 4 tiles.
  EXPECT_EQ(plan.tiles.size(), 16u);
  std::vector<int> hits(13 * 17, 0);
  std::int64_t points = 0;
  for (const auto& t : plan.tiles) {
    EXPECT_LE(t.hi[0], 13);  // remainder clamped at lowering, not at run time
    EXPECT_LE(t.hi[1], 17);
    for (std::int64_t a = t.lo[0]; a < t.hi[0]; ++a)
      for (std::int64_t b = t.lo[1]; b < t.hi[1]; ++b, ++points)
        ++hits[static_cast<std::size_t>(a * 17 + b)];
  }
  EXPECT_EQ(points, 13 * 17);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(LowerSweep, UntiledParallelAxisSplitsIntoBlocks) {
  auto prog = std::make_unique<dsl::Program>("par");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto& k = prog->kernel("k", {j, i}, dsl::ExprH(0.5) * B(j, i));
  k.parallel("j", 4);
  prog->def_stencil("st", B, k[prog->t() - 1]);

  const SweepPlan plan = lower_sweep(build_loop_plan(prog->primary_schedule()));
  EXPECT_TRUE(plan.parallel);
  EXPECT_EQ(plan.tiles.size(), 4u);
  std::int64_t points = 0;
  for (const auto& t : plan.tiles) points += (t.hi[0] - t.lo[0]) * (t.hi[1] - t.lo[1]);
  EXPECT_EQ(points, 8 * 8);
}

TEST(LowerSweep, ThreadsBeyondTripStillCoverEverything) {
  // 3 rows, 8 requested threads: the lowering must not produce empty or
  // overlapping tiles.
  auto prog = std::make_unique<dsl::Program>("overpar");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 3, 5);
  auto& k = prog->kernel("k", {j, i}, dsl::ExprH(0.5) * B(j, i));
  k.parallel("j", 8);
  prog->def_stencil("st", B, k[prog->t() - 1]);

  const SweepPlan plan = lower_sweep(build_loop_plan(prog->primary_schedule()));
  std::int64_t points = 0;
  for (const auto& t : plan.tiles) {
    EXPECT_GT(t.hi[0], t.lo[0]);
    points += (t.hi[0] - t.lo[0]) * (t.hi[1] - t.lo[1]);
  }
  EXPECT_EQ(points, 3 * 5);
}

// ---- interpreted vs compiled, bit for bit --------------------------------

// Runs both executors from the same seeded state and requires bit-identical
// interiors at the final step.
template <typename T>
void expect_paths_bit_identical(const ir::StencilDef& st, const schedule::Schedule& sched,
                                std::int64_t steps, std::uint64_t seed) {
  GridStorage<T> gi(st.state());
  GridStorage<T> gc(st.state());
  for (int s = 0; s < gi.slots(); ++s) {
    gi.fill_random(s, seed + static_cast<std::uint64_t>(s));
    gc.fill_random(s, seed + static_cast<std::uint64_t>(s));
  }
  run_scheduled_interpreted(st, sched, gi, 1, steps, Boundary::ZeroHalo);
  run_scheduled(st, sched, gc, 1, steps, Boundary::ZeroHalo);
  const int fs = gi.slot_for_time(steps);
  const auto vi = gi.interior_values(fs);
  const auto vc = gc.interior_values(fs);
  ASSERT_EQ(vi.size(), vc.size());
  for (std::size_t p = 0; p < vi.size(); ++p) {
    ASSERT_EQ(vi[p], vc[p]) << "first divergence at flat index " << p;
  }
}

TEST(SweepVsInterpreter, RandomConformanceCasesBitIdentical) {
  int ran = 0;
  for (std::uint64_t seed = 1; seed <= 40 && ran < 12; ++seed) {
    const auto spec = check::random_case(seed);
    auto prog = check::build_program(spec);
    if (!linearize_stencil(prog->stencil(), prog->bindings()).has_value()) continue;
    SCOPED_TRACE(check::describe(spec));
    expect_paths_bit_identical<double>(prog->stencil(), prog->primary_schedule(),
                                       spec.timesteps, seed * 97 + 5);
    ++ran;
  }
  EXPECT_GE(ran, 8) << "case generator stopped producing affine cases";
}

TEST(SweepVsInterpreter, RemainderTilesBitIdentical) {
  // Extents deliberately not divisible by the tile in any dimension.
  auto prog = std::make_unique<dsl::Program>("rem");
  auto kvar = prog->var("k"), j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_3d_timewin("B", 2, 1, ir::DataType::f64, 11, 9, 13);
  auto& k = prog->kernel("k", {kvar, j, i},
                         dsl::ExprH(0.4) * B(kvar, j, i) + dsl::ExprH(0.15) * B(kvar - 1, j, i) +
                             dsl::ExprH(0.15) * B(kvar + 1, j, i) +
                             dsl::ExprH(0.15) * B(kvar, j - 1, i) +
                             dsl::ExprH(0.15) * B(kvar, j + 1, i));
  k.tile({4, 4, 8}).reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"});
  prog->def_stencil("st", B, 0.6 * k[prog->t() - 1] + 0.4 * k[prog->t() - 2]);
  expect_paths_bit_identical<double>(prog->stencil(), prog->primary_schedule(), 3, 11);
}

TEST(SweepVsInterpreter, ParallelThreadsBeyondTripBitIdentical) {
  auto prog = std::make_unique<dsl::Program>("overpar2");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 3, 64);
  auto& k = prog->kernel("k", {j, i},
                         dsl::ExprH(0.5) * B(j, i - 1) + dsl::ExprH(0.5) * B(j, i + 1));
  k.parallel("j", 16);
  prog->def_stencil("st", B, k[prog->t() - 1]);
  expect_paths_bit_identical<double>(prog->stencil(), prog->primary_schedule(), 4, 3);
}

TEST(SweepVsInterpreter, DeepTimeWindowBitIdentical) {
  auto prog = std::make_unique<dsl::Program>("deep");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 3, 1, ir::DataType::f64, 12, 12);
  auto& k = prog->kernel("k", {j, i},
                         dsl::ExprH(0.25) * B(j - 1, i) + dsl::ExprH(0.25) * B(j + 1, i) +
                             dsl::ExprH(0.25) * B(j, i - 1) + dsl::ExprH(0.25) * B(j, i + 1));
  k.tile({4, 4}).reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
  prog->def_stencil("st", B,
                    0.5 * k[prog->t() - 1] + 0.3 * k[prog->t() - 2] + 0.2 * k[prog->t() - 3]);
  expect_paths_bit_identical<double>(prog->stencil(), prog->primary_schedule(), 5, 21);
}

TEST(SweepVsInterpreter, Fp32BitIdentical) {
  auto prog = std::make_unique<dsl::Program>("f32sweep");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 2, 1, ir::DataType::f32, 18, 14);
  auto& k = prog->kernel("k", {j, i},
                         dsl::ExprH(0.5) * B(j, i - 1) + dsl::ExprH(0.5) * B(j, i + 1));
  k.tile({8, 8}).reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
  prog->def_stencil("st", B, 0.5 * k[prog->t() - 1] + 0.5 * k[prog->t() - 2]);
  expect_paths_bit_identical<float>(prog->stencil(), prog->primary_schedule(), 4, 7);
}

// ---- temporal engine pinned against committed golden checksums ------------

// The golden-matrix programs {3d7pt_star, heat2d} run through the
// per-step sweep engine from a fixed seed; their per-slot interior
// checksums are committed in tests/golden/temporal_pin.txt (hexfloat, so
// the comparison is exact).  The test then reruns both programs through
// the temporal engine at wedge depths 2 and 8 and requires bit-identical
// slots — proving the temporal engine cannot drift from the per-step
// engine's committed outputs.  Regenerate (after a reviewed numeric
// change only) with MSC_UPDATE_TEMPORAL_PIN=1.
TEST(TemporalGoldenPin, EngineMatchesCommittedChecksums) {
  const std::int64_t steps = 8;
  const std::string pin_path = std::string(MSC_GOLDEN_DIR) + "/temporal_pin.txt";

  std::vector<std::string> lines;
  for (const char* name : {"3d7pt_star", "heat2d"}) {
    auto prog = check::golden_program({name, "openmp"});
    const auto& st = prog->stencil();
    const auto& sched = prog->primary_schedule();

    GridStorage<double> base(st.state());
    for (int s = 0; s < base.slots(); ++s)
      base.fill_random(s, 4242 + static_cast<std::uint64_t>(s));
    run_scheduled(st, sched, base, 1, steps, Boundary::ZeroHalo);

    for (std::int64_t depth : {2, 8}) {
      GridStorage<double> temporal(st.state());
      for (int s = 0; s < temporal.slots(); ++s)
        temporal.fill_random(s, 4242 + static_cast<std::uint64_t>(s));
      TemporalOptions opts;
      opts.wedge_depth = depth;
      TemporalExecInfo info;
      run_scheduled_temporal(st, sched, temporal, 1, steps, Boundary::ZeroHalo, {}, nullptr,
                             &info, opts);
      ASSERT_TRUE(info.temporal) << info.fallback_reason;
      for (int s = 0; s < base.slots(); ++s)
        ASSERT_EQ(base.interior_values(s), temporal.interior_values(s))
            << name << " wedge depth " << depth << " slot " << s;
    }

    for (int s = 0; s < base.slots(); ++s) {
      std::ostringstream line;
      line << name << " slot" << s << " " << std::hexfloat << base.interior_checksum(s);
      lines.push_back(line.str());
    }
  }

  if (std::getenv("MSC_UPDATE_TEMPORAL_PIN") != nullptr) {
    std::ofstream out(pin_path);
    out << "# msc-temporal-pin-v1: per-slot interior checksums (hexfloat) of the\n"
           "# per-step sweep engine on the golden-matrix programs, seed 4242,\n"
           "# 8 timesteps.  The temporal engine must reproduce them bit for bit;\n"
           "# regenerate with MSC_UPDATE_TEMPORAL_PIN=1 after a reviewed change.\n";
    for (const auto& l : lines) out << l << "\n";
    ASSERT_TRUE(out.good()) << "cannot write " << pin_path;
    GTEST_SKIP() << "temporal pin regenerated at " << pin_path;
  }

  std::ifstream in(pin_path);
  ASSERT_TRUE(in.good()) << "missing " << pin_path
                         << "; regenerate with MSC_UPDATE_TEMPORAL_PIN=1";
  std::vector<std::string> want;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty() && line[0] != '#') want.push_back(line);
  EXPECT_EQ(want, lines) << "numeric drift against the committed temporal pin";
}

// ---- wide kernels (row-accumulator formulation) --------------------------

// Past kFusedTermLimit the span kernel switches to per-term accumulation
// through an in-L1 buffer; results must still match the per-point
// interpreter bit for bit.
TEST(SweepRow, WideTermCountsMatchPointLoopBitwise) {
  Rng rng(123);
  const std::int64_t n = 300;  // > kSweepChunk to exercise chunking
  std::vector<double> backing(2048);
  for (auto& v : backing) v = rng.next_real(-1.0, 1.0);

  for (std::size_t nt : {1u, 7u, 16u, 17u, 18u, 31u, 32u, 40u}) {
    std::vector<detail::ResolvedTerm<double>> terms;
    for (std::size_t k = 0; k < nt; ++k)
      terms.push_back({rng.next_real(-1.0, 1.0), static_cast<std::int64_t>(k % 5),
                       backing.data() + 64 + 13 * static_cast<std::int64_t>(k % 9)});
    std::vector<double> a(1024, 0.0), b(1024, 0.0);
    detail::sweep_row(a.data(), 8, n, terms);
    for (std::int64_t i = 0; i < n; ++i) detail::sweep_point_linear(b.data(), 8 + i, terms);
    for (std::int64_t i = 0; i < n + 16; ++i)
      ASSERT_EQ(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)])
          << "nt=" << nt << " i=" << i;
  }
}

// ---- non-affine fallback -------------------------------------------------

TEST(RunReference, NonAffineStencilUsesEvalFallback) {
  auto prog = std::make_unique<dsl::Program>("sq");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 6, 6);
  auto& k = prog->kernel("k", {j, i}, B(j, i) * B(j, i));  // non-linear read
  prog->def_stencil("st", B, k[prog->t() - 1]);
  ASSERT_FALSE(linearize_stencil(prog->stencil(), prog->bindings()).has_value());

  GridStorage<double> g(prog->stencil().state());
  g.for_each_interior([&](std::array<std::int64_t, 3> c) { g.at(0, c) = 3.0; });
  run_reference(prog->stencil(), g, 1, 1, Boundary::ZeroHalo);
  const int fs = g.slot_for_time(1);
  g.for_each_interior(
      [&](std::array<std::int64_t, 3> c) { ASSERT_DOUBLE_EQ(g.at(fs, c), 9.0); });
}

// ---- row-based grid primitives -------------------------------------------

TEST(GridRows, FillRandomMatchesPerPointOrder) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {5, 7}, 2, 2);
  GridStorage<double> g(t);
  g.fill_random(0, 42);
  // Hand per-point loop consuming the Rng in for_each_interior order.
  Rng rng(42);
  g.for_each_interior([&](std::array<std::int64_t, 3> c) {
    ASSERT_EQ(g.at(0, c), rng.next_real(-1.0, 1.0));
  });
}

TEST(GridRows, ChecksumAndValuesMatchPerPointOrder) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 3, 6}, 1, 2);
  GridStorage<double> g(t);
  g.fill_random(1, 9);
  double sum = 0.0;
  std::vector<double> vals;
  g.for_each_interior([&](std::array<std::int64_t, 3> c) {
    sum += g.at(1, c);
    vals.push_back(g.at(1, c));
  });
  EXPECT_EQ(g.interior_checksum(1), sum);  // same order => same rounding
  EXPECT_EQ(g.interior_values(1), vals);
}

TEST(GridRows, ZeroHaloClearsExactlyTheHalo) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 5, 6}, 2, 1);
  GridStorage<double> g(t);
  // Poison everything (halo included), then zero the halo.
  double* d = g.slot_data(0);
  for (std::int64_t p = 0; p < g.padded_points(); ++p) d[p] = 7.0;
  g.fill_halo(0, Boundary::ZeroHalo);
  g.for_each_interior(
      [&](std::array<std::int64_t, 3> c) { ASSERT_DOUBLE_EQ(g.at(0, c), 7.0); });
  double total = 0.0;
  for (std::int64_t p = 0; p < g.padded_points(); ++p) total += d[p];
  EXPECT_DOUBLE_EQ(total, 7.0 * 4 * 5 * 6);  // every halo cell is zero
}

TEST(GridStorageCopy, CopyPreservesPayloadBitwise) {
  // Regression: slot payloads live at a page-aligned, address-dependent
  // offset; a byte-for-byte buffer copy silently shifted the data.
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {9, 11}, 2, 3);
  GridStorage<double> g(t);
  for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 100 + static_cast<std::uint64_t>(s));
  GridStorage<double> copy = g;
  for (int s = 0; s < g.slots(); ++s)
    EXPECT_EQ(copy.interior_values(s), g.interior_values(s)) << "slot " << s;
  GridStorage<double> assigned(t);
  assigned = g;
  EXPECT_EQ(assigned.interior_values(2), g.interior_values(2));
}

}  // namespace
}  // namespace msc::exec
