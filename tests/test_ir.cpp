// Unit tests of the IR layer: dtypes, tensors, axes, expressions and their
// analyses, kernels, stencils, printer and verifier.

#include <gtest/gtest.h>

#include "ir/axis.hpp"
#include "ir/expr.hpp"
#include "ir/kernel.hpp"
#include "ir/printer.hpp"
#include "ir/stencil.hpp"
#include "ir/tensor.hpp"
#include "ir/type.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace msc::ir {
namespace {

TEST(DataType, SizesAndNames) {
  EXPECT_EQ(dtype_size(DataType::i32), 4u);
  EXPECT_EQ(dtype_size(DataType::f32), 4u);
  EXPECT_EQ(dtype_size(DataType::f64), 8u);
  EXPECT_EQ(dtype_name(DataType::f64), "f64");
  EXPECT_EQ(dtype_c_name(DataType::f32), "float");
  EXPECT_TRUE(dtype_is_float(DataType::f32));
  EXPECT_FALSE(dtype_is_float(DataType::i32));
}

TEST(DataType, Promotion) {
  EXPECT_EQ(dtype_promote(DataType::i32, DataType::f32), DataType::f32);
  EXPECT_EQ(dtype_promote(DataType::f32, DataType::f64), DataType::f64);
  EXPECT_EQ(dtype_promote(DataType::i32, DataType::i32), DataType::i32);
}

TEST(Tensor, SpNodeGeometry) {
  auto t = make_sp_tensor("B", DataType::f64, {16, 32}, 2, 3);
  EXPECT_EQ(t->ndim(), 2);
  EXPECT_EQ(t->interior_points(), 16 * 32);
  EXPECT_EQ(t->padded_points(), 20 * 36);
  EXPECT_EQ(t->allocation_bytes(), 20 * 36 * 8 * 3);
  EXPECT_EQ(t->kind(), TensorKind::SpNode);
}

TEST(Tensor, TeNodeHasNoHalo) {
  auto sp = make_sp_tensor("B", DataType::f32, {8, 8, 8}, 1);
  auto te = make_te_tensor("tmp", sp);
  EXPECT_EQ(te->halo(), 0);
  EXPECT_EQ(te->kind(), TensorKind::TeNode);
  EXPECT_EQ(te->shape(), sp->shape());
  EXPECT_EQ(te->dtype(), DataType::f32);
}

TEST(Tensor, RejectsBadShapes) {
  EXPECT_THROW(make_sp_tensor("B", DataType::f64, {}, 0), Error);
  EXPECT_THROW(make_sp_tensor("B", DataType::f64, {4, 4, 4, 4}, 0), Error);
  EXPECT_THROW(make_sp_tensor("B", DataType::f64, {0, 4}, 0), Error);
  EXPECT_THROW(make_sp_tensor("B", DataType::f64, {4, 4}, -1), Error);
  EXPECT_THROW(make_sp_tensor("", DataType::f64, {4}, 0), Error);
}

TEST(Axis, TripCountWithStride) {
  Axis ax;
  ax.start = 0;
  ax.end = 10;
  ax.stride = 3;
  EXPECT_EQ(ax.trip_count(), 4);  // 0, 3, 6, 9
}

TEST(Axis, FindAndRenumber) {
  AxisList axes(3);
  axes[0].id_var = "k";
  axes[1].id_var = "j";
  axes[2].id_var = "i";
  EXPECT_EQ(find_axis(axes, "j"), 1);
  EXPECT_EQ(find_axis(axes, "zz"), -1);
  std::swap(axes[0], axes[2]);
  renumber(axes);
  EXPECT_EQ(axes[0].order, 0);
  EXPECT_EQ(axes[2].order, 2);
}

class ExprFixture : public ::testing::Test {
 protected:
  Tensor B = make_sp_tensor("B", DataType::f64, {8, 8}, 1, 3);
  Expr access(std::int64_t dj, std::int64_t di, int toff = 0) {
    return make_access(B, {{"j", dj}, {"i", di}}, toff);
  }
};

TEST_F(ExprFixture, OpCountCensus) {
  // 0.5*B[j,i] + 0.25*B[j,i-1] - B[j,i+1]
  auto e = make_binary(
      BinaryOp::Sub,
      make_binary(BinaryOp::Add, make_binary(BinaryOp::Mul, make_float(0.5), access(0, 0)),
                  make_binary(BinaryOp::Mul, make_float(0.25), access(0, -1))),
      access(0, 1));
  const auto ops = count_ops(e);
  EXPECT_EQ(ops.add_sub, 2);
  EXPECT_EQ(ops.mul, 2);
  EXPECT_EQ(ops.plus_minus_times(), 4);
}

TEST_F(ExprFixture, DistinctReads) {
  auto dup = make_binary(BinaryOp::Add, access(0, 1), access(0, 1));
  EXPECT_EQ(count_distinct_reads(dup), 1);
  auto two = make_binary(BinaryOp::Add, access(0, 1), access(1, 0));
  EXPECT_EQ(count_distinct_reads(two), 2);
  // Same spatial offset at another timestep is a distinct read.
  auto timed = make_binary(BinaryOp::Add, access(0, 1), access(0, 1, -1));
  EXPECT_EQ(count_distinct_reads(timed), 2);
}

TEST_F(ExprFixture, AccessRadius) {
  auto e = make_binary(BinaryOp::Add, access(-1, 0), access(0, 1));
  const auto r = access_radius(e, "B", 2);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 1);
}

TEST_F(ExprFixture, MinTimeOffset) {
  auto e = make_binary(BinaryOp::Add, access(0, 0, -2), access(0, 0, -1));
  EXPECT_EQ(min_time_offset(e), -2);
  EXPECT_EQ(min_time_offset(access(0, 0)), 0);
}

TEST_F(ExprFixture, AccessRejectsWrongArity) {
  EXPECT_THROW(make_access(B, {{"i", 0}}), Error);
}

TEST_F(ExprFixture, AccessRejectsFutureReads) {
  EXPECT_THROW(make_access(B, {{"j", 0}, {"i", 0}}, +1), Error);
}

TEST_F(ExprFixture, AccessRejectsOffsetBeyondHalo) {
  // Halo is 1; offset 2 must fail at kernel construction.
  auto rhs = access(0, 2);
  EXPECT_THROW(make_kernel("k", make_te_tensor("o", B), default_axes(B), rhs), Error);
}

TEST_F(ExprFixture, AssignRequiresZeroOffsets) {
  auto out = make_te_tensor("o", B);
  auto lhs = make_access(out, {{"j", 0}, {"i", 1}});
  EXPECT_THROW(make_assign(lhs, access(0, 0)), Error);
}

TEST_F(ExprFixture, PrinterRoundTripContainsStructure) {
  auto e = make_binary(BinaryOp::Mul, make_float(2.0), access(0, -1));
  const auto s = to_string(e);
  EXPECT_NE(s.find("B[j,i-1]"), std::string::npos);
  EXPECT_NE(s.find("*"), std::string::npos);
}

TEST(Kernel, StatsMatchHandConstructed3d7pt) {
  auto B = make_sp_tensor("B", DataType::f64, {8, 8, 8}, 1, 3);
  auto acc = [&](std::int64_t dk, std::int64_t dj, std::int64_t di) {
    return make_access(B, {{"k", dk}, {"j", dj}, {"i", di}});
  };
  Expr rhs;
  const std::array<std::array<std::int64_t, 3>, 7> offs = {
      {{0, 0, 0}, {0, 0, -1}, {0, 0, 1}, {0, -1, 0}, {0, 1, 0}, {-1, 0, 0}, {1, 0, 0}}};
  for (std::size_t n = 0; n < offs.size(); ++n) {
    auto term = make_binary(BinaryOp::Mul, make_float(0.1 * static_cast<double>(n + 1)),
                            acc(offs[n][0], offs[n][1], offs[n][2]));
    rhs = n == 0 ? term : make_binary(BinaryOp::Add, rhs, term);
  }
  auto k = make_kernel("s3d7pt", make_te_tensor("o", B), default_axes(B), rhs);
  EXPECT_EQ(k->stats().points_read, 7);
  EXPECT_EQ(k->stats().bytes_read, 56);   // Table 4 row 3d7pt_star
  EXPECT_EQ(k->stats().bytes_written, 8);
  EXPECT_EQ(k->stats().ops.plus_minus_times(), 13);  // 7 muls + 6 adds
  EXPECT_EQ(k->stats().max_radius, 1);
  EXPECT_EQ(k->required_time_window(), 1);  // no self time refs inside the kernel
  ASSERT_EQ(k->inputs().size(), 1u);
  EXPECT_EQ(k->inputs()[0]->name(), "B");
}

TEST(Kernel, DefaultAxesMatchTensor) {
  auto B = make_sp_tensor("B", DataType::f32, {4, 6}, 1);
  auto axes = default_axes(B);
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].id_var, "j");
  EXPECT_EQ(axes[1].id_var, "i");
  EXPECT_EQ(axes[0].end, 4);
  EXPECT_EQ(axes[1].end, 6);
}

class StencilFixture : public ::testing::Test {
 protected:
  Tensor B = make_sp_tensor("B", DataType::f64, {8, 8}, 1, 3);
  KernelPtr k = [this] {
    auto rhs = make_binary(
        BinaryOp::Add, make_binary(BinaryOp::Mul, make_float(0.5), make_access(B, {{"j", 0}, {"i", 0}})),
        make_binary(BinaryOp::Mul, make_float(0.1), make_access(B, {{"j", 0}, {"i", 1}})));
    return make_kernel("lap", make_te_tensor("o", B), default_axes(B), rhs);
  }();
};

TEST_F(StencilFixture, WindowFromDeepestOffset) {
  auto st = make_stencil("st", B, {{k, -1, 0.6}, {k, -2, 0.4}});
  EXPECT_EQ(st->time_window(), 3);
  EXPECT_EQ(st->min_time_offset(), -2);
  EXPECT_EQ(st->time_dependencies(), 2);
  EXPECT_EQ(st->max_radius(), 1);
  EXPECT_EQ(st->state()->name(), "B");
}

TEST_F(StencilFixture, RejectsDuplicateOffsets) {
  EXPECT_THROW(make_stencil("st", B, {{k, -1, 1.0}, {k, -1, 1.0}}), Error);
}

TEST_F(StencilFixture, RejectsNonNegativeOffsets) {
  EXPECT_THROW(make_stencil("st", B, {{k, 0, 1.0}}), Error);
}

TEST_F(StencilFixture, RejectsWindowDeeperThanTensor) {
  // B declares window 3 (deps up to t-2); a t-3 term must fail.
  EXPECT_THROW(make_stencil("st", B, {{k, -3, 1.0}}), Error);
}

TEST_F(StencilFixture, PrinterShowsTerms) {
  auto st = make_stencil("st", B, {{k, -1, 1.0}, {k, -2, 0.5}});
  const auto s = to_string(*st);
  EXPECT_NE(s.find("lap[t-1]"), std::string::npos);
  EXPECT_NE(s.find("0.5*lap[t-2]"), std::string::npos);
}

TEST_F(StencilFixture, VerifierAcceptsValid) {
  auto st = make_stencil("st", B, {{k, -1, 1.0}});
  EXPECT_TRUE(verify_stencil(*st).empty());
  EXPECT_NO_THROW(verify_or_throw(*st));
}

TEST(Verifier, FlagsAxisDimensionMisuse) {
  // Access uses axis i in dimension 0 and j in dimension 1 — transposed.
  auto B = make_sp_tensor("B", DataType::f64, {8, 8}, 1);
  auto rhs = make_access(B, {{"i", 0}, {"j", 0}});
  auto k = make_kernel("bad", make_te_tensor("o", B), default_axes(B), rhs);
  const auto diags = verify_kernel(*k);
  EXPECT_FALSE(diags.empty());
}

TEST(Verifier, FlagsDtypeMismatch) {
  auto B = make_sp_tensor("B", DataType::f64, {8}, 1);
  auto C = make_sp_tensor("C", DataType::f32, {8}, 1);
  auto rhs = make_binary(BinaryOp::Add, make_access(B, {{"i", 0}}), make_access(C, {{"i", 0}}));
  auto k = make_kernel("mix", make_te_tensor("o", B), default_axes(B), rhs);
  const auto diags = verify_kernel(*k);
  bool found = false;
  for (const auto& d : diags) found |= d.find("dtype") != std::string::npos;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace msc::ir
