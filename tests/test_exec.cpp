// Unit tests of the execution engine: grid storage, linearization, the
// generic evaluator, and reference-vs-scheduled executor agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "dsl/program.hpp"
#include "exec/eval.hpp"
#include "exec/executor.hpp"
#include "exec/grid.hpp"
#include "exec/linearize.hpp"
#include "support/error.hpp"

namespace msc::exec {
namespace {

TEST(GridStorage, GeometryAndSlots) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 6}, 2, 3);
  GridStorage<double> g(t);
  EXPECT_EQ(g.ndim(), 2);
  EXPECT_EQ(g.slots(), 3);
  EXPECT_EQ(g.halo(), 2);
  EXPECT_EQ(g.padded_points(), 8 * 10);
  EXPECT_EQ(g.stride(0), 10);
  EXPECT_EQ(g.stride(1), 1);
}

TEST(GridStorage, ElementTypeMustMatchDtype) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 4}, 1);
  EXPECT_THROW(GridStorage<float>{t}, Error);
}

TEST(GridStorage, SlotForTimeWrapsNegatives) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 4}, 1, 3);
  GridStorage<double> g(t);
  EXPECT_EQ(g.slot_for_time(0), 0);
  EXPECT_EQ(g.slot_for_time(-1), 2);
  EXPECT_EQ(g.slot_for_time(-2), 1);
  EXPECT_EQ(g.slot_for_time(3), 0);
}

TEST(GridStorage, HaloAndInteriorAddressingDisjoint) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 4}, 1);
  GridStorage<double> g(t);
  g.at(0, {0, 0, 0}) = 5.0;
  g.at(0, {-1, -1, 0}) = 7.0;  // halo corner
  EXPECT_DOUBLE_EQ(g.at(0, {0, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(g.at(0, {-1, -1, 0}), 7.0);
}

TEST(GridStorage, ZeroHaloClearsOnlyHalo) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {3, 3}, 1);
  GridStorage<double> g(t);
  g.for_each_interior([&](std::array<std::int64_t, 3> c) { g.at(0, c) = 1.0; });
  g.at(0, {-1, 0, 0}) = 9.0;
  g.fill_halo(0, Boundary::ZeroHalo);
  EXPECT_DOUBLE_EQ(g.at(0, {-1, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(g.at(0, {1, 1, 0}), 1.0);
}

TEST(GridStorage, PeriodicHaloWraps) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 4}, 1);
  GridStorage<double> g(t);
  g.for_each_interior([&](std::array<std::int64_t, 3> c) {
    g.at(0, c) = static_cast<double>(10 * c[0] + c[1]);
  });
  g.fill_halo(0, Boundary::Periodic);
  EXPECT_DOUBLE_EQ(g.at(0, {-1, 0, 0}), 30.0);  // wraps to row 3
  EXPECT_DOUBLE_EQ(g.at(0, {0, -1, 0}), 3.0);   // wraps to col 3
  EXPECT_DOUBLE_EQ(g.at(0, {4, 4, 0}), 0.0);    // wraps to (0,0)
  EXPECT_DOUBLE_EQ(g.at(0, {-1, -1, 0}), 33.0); // corner wrap
}

TEST(GridStorage, ExternalBoundaryLeavesHaloUntouched) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {3, 3}, 1);
  GridStorage<double> g(t);
  g.at(0, {-1, 0, 0}) = 4.0;
  g.fill_halo(0, Boundary::External);
  EXPECT_DOUBLE_EQ(g.at(0, {-1, 0, 0}), 4.0);
}

TEST(GridStorage, FillRandomDeterministic) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {8, 8}, 1);
  GridStorage<double> a(t), b(t);
  a.fill_random(0, 42);
  b.fill_random(0, 42);
  EXPECT_DOUBLE_EQ(a.at(0, {3, 3, 0}), b.at(0, {3, 3, 0}));
  b.fill_random(0, 43);
  EXPECT_NE(a.at(0, {3, 3, 0}), b.at(0, {3, 3, 0}));
}

TEST(MaxRelativeError, DetectsDifference) {
  auto t = ir::make_sp_tensor("B", ir::DataType::f64, {4, 4}, 0);
  GridStorage<double> a(t), b(t);
  a.for_each_interior([&](std::array<std::int64_t, 3> c) { a.at(0, c) = 2.0; });
  b.for_each_interior([&](std::array<std::int64_t, 3> c) { b.at(0, c) = 2.0; });
  EXPECT_DOUBLE_EQ(max_relative_error(a, 0, b, 0), 0.0);
  a.at(0, {1, 1, 0}) = 2.2;
  EXPECT_NEAR(max_relative_error(a, 0, b, 0), 0.1, 1e-12);
}

// ---- linearization --------------------------------------------------------

TEST(Linearize, AffineSumOfProducts) {
  auto B = ir::make_sp_tensor("B", ir::DataType::f64, {8, 8}, 1, 3);
  auto acc = [&](std::int64_t dj, std::int64_t di) {
    return ir::make_access(B, {{"j", dj}, {"i", di}});
  };
  // 0.5*B[j,i-1] - 2*B[j+1,i] + B[j,i]
  auto rhs = ir::make_binary(
      ir::BinaryOp::Add,
      ir::make_binary(ir::BinaryOp::Sub,
                      ir::make_binary(ir::BinaryOp::Mul, ir::make_float(0.5), acc(0, -1)),
                      ir::make_binary(ir::BinaryOp::Mul, ir::make_float(2.0), acc(1, 0))),
      acc(0, 0));
  auto k = ir::make_kernel("k", ir::make_te_tensor("o", B), ir::default_axes(B), rhs);
  const auto lin = linearize(*k, {});
  ASSERT_TRUE(lin.has_value());
  ASSERT_EQ(lin->terms.size(), 3u);
  EXPECT_DOUBLE_EQ(lin->terms[0].coeff, 0.5);
  EXPECT_EQ(lin->terms[0].offset[1], -1);
  EXPECT_DOUBLE_EQ(lin->terms[1].coeff, -2.0);
  EXPECT_EQ(lin->terms[1].offset[0], 1);
  EXPECT_DOUBLE_EQ(lin->terms[2].coeff, 1.0);
}

TEST(Linearize, HandlesNegationAndVarBindings) {
  auto B = ir::make_sp_tensor("B", ir::DataType::f64, {8, 8}, 1, 3);
  auto acc = ir::make_access(B, {{"j", 0}, {"i", 0}});
  auto rhs = ir::make_unary(ir::UnaryOp::Neg,
                            ir::make_binary(ir::BinaryOp::Mul,
                                            ir::make_var("c", ir::DataType::f64), acc));
  auto k = ir::make_kernel("k", ir::make_te_tensor("o", B), ir::default_axes(B), rhs);
  EXPECT_FALSE(linearize(*k, {}).has_value());  // unbound var
  const auto lin = linearize(*k, {{"c", 3.0}});
  ASSERT_TRUE(lin.has_value());
  EXPECT_DOUBLE_EQ(lin->terms[0].coeff, -3.0);
}

TEST(Linearize, RejectsDivision) {
  auto B = ir::make_sp_tensor("B", ir::DataType::f64, {8, 8}, 1, 3);
  auto acc = ir::make_access(B, {{"j", 0}, {"i", 0}});
  auto rhs = ir::make_binary(ir::BinaryOp::Div, acc, ir::make_float(2.0));
  auto k = ir::make_kernel("k", ir::make_te_tensor("o", B), ir::default_axes(B), rhs);
  EXPECT_FALSE(linearize(*k, {}).has_value());
}

// ---- generic evaluator -----------------------------------------------------

TEST(Eval, ArithmeticAndCalls) {
  EvalEnv env;
  env.axis_values["i"] = 4;
  auto e = ir::make_binary(ir::BinaryOp::Max, ir::make_float(2.0),
                           ir::make_call("sqrt", {ir::make_var("i", ir::DataType::f64)},
                                         ir::DataType::f64));
  EXPECT_DOUBLE_EQ(eval_expr(e, env), 2.0);
  env.axis_values["i"] = 16;
  auto e2 = ir::make_call("sqrt", {ir::make_var("i", ir::DataType::f64)}, ir::DataType::f64);
  EXPECT_DOUBLE_EQ(eval_expr(e2, env), 4.0);
}

TEST(Eval, DivisionByZeroThrows) {
  EvalEnv env;
  auto e = ir::make_binary(ir::BinaryOp::Div, ir::make_float(1.0), ir::make_float(0.0));
  EXPECT_THROW(eval_expr(e, env), Error);
}

TEST(Eval, UnboundVariableThrows) {
  EvalEnv env;
  EXPECT_THROW(eval_expr(ir::make_var("ghost", ir::DataType::f64), env), Error);
}

// ---- executors --------------------------------------------------------

/// Builds a 2-time-dep 2-D star stencil program for executor tests.
struct ExecProgram {
  std::unique_ptr<dsl::Program> prog;
  ExecProgram(std::int64_t n, bool with_schedule) {
    prog = std::make_unique<dsl::Program>("exec_test");
    dsl::Var j = prog->var("j"), i = prog->var("i");
    dsl::GridRef B = prog->def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, n, n);
    auto& k = prog->kernel("k", {j, i},
                           dsl::ExprH(0.3) * B(j, i) + dsl::ExprH(0.15) * B(j, i - 1) +
                               dsl::ExprH(0.15) * B(j, i + 1) + dsl::ExprH(0.2) * B(j - 1, i) +
                               dsl::ExprH(0.2) * B(j + 1, i));
    if (with_schedule) {
      k.tile({8, 8})
          .reorder({"j_outer", "i_outer", "j_inner", "i_inner"})
          .cache_read("B", "rbuf")
          .cache_write("wbuf")
          .compute_at("rbuf", "i_outer")
          .compute_at("wbuf", "i_outer")
          .parallel("j_outer", 4);
    }
    prog->def_stencil("st", B, 0.7 * k[prog->t() - 1] + 0.3 * k[prog->t() - 2]);
  }
};

TEST(Executor, ScheduledMatchesReferenceBitExact) {
  ExecProgram ep(30, /*with_schedule=*/true);  // 30 % 8 != 0: remainder tiles
  auto grid = ir::make_sp_tensor("B", ir::DataType::f64, {30, 30}, 1, 3);
  GridStorage<double> a(grid), b(grid);
  for (int s = 0; s < 3; ++s) {
    a.fill_random(s, 11 + static_cast<std::uint64_t>(s));
    b.fill_random(s, 11 + static_cast<std::uint64_t>(s));
  }
  ExecStats stats;
  run_scheduled(ep.prog->stencil(), ep.prog->primary_schedule(), a, 1, 6,
                Boundary::ZeroHalo, {}, &stats);
  run_reference(ep.prog->stencil(), b, 1, 6, Boundary::ZeroHalo);
  // Identical term order -> identical floating-point result.
  EXPECT_EQ(max_relative_error(a, a.slot_for_time(6), b, b.slot_for_time(6)), 0.0);
  EXPECT_EQ(stats.timesteps, 6);
  EXPECT_EQ(stats.points_updated, 6 * 30 * 30);
  EXPECT_GT(stats.tiles_executed, 0);
  EXPECT_GT(stats.staged_bytes_in, 0);
}

TEST(Executor, PeriodicBoundaryMatches) {
  ExecProgram ep(16, true);
  auto grid = ir::make_sp_tensor("B", ir::DataType::f64, {16, 16}, 1, 3);
  GridStorage<double> a(grid), b(grid);
  for (int s = 0; s < 3; ++s) {
    a.fill_random(s, 5 + static_cast<std::uint64_t>(s));
    b.fill_random(s, 5 + static_cast<std::uint64_t>(s));
  }
  run_scheduled(ep.prog->stencil(), ep.prog->primary_schedule(), a, 1, 4, Boundary::Periodic);
  run_reference(ep.prog->stencil(), b, 1, 4, Boundary::Periodic);
  EXPECT_EQ(max_relative_error(a, a.slot_for_time(4), b, b.slot_for_time(4)), 0.0);
}

TEST(Executor, LoopPlanValidatesCoverage) {
  ExecProgram ep(16, true);
  const auto plan = build_loop_plan(ep.prog->primary_schedule());
  EXPECT_EQ(plan.ndim, 2);
  EXPECT_EQ(plan.levels.size(), 4u);
  EXPECT_EQ(plan.parallel_depth, 0);
  EXPECT_EQ(plan.read_stage_depth, 1);
  EXPECT_GT(plan.tiles_per_step, 0);
  EXPECT_GT(plan.tile_bytes_read, 0);
}

TEST(Executor, StencilLinearizationCombinesWeights) {
  ExecProgram ep(16, false);
  const auto lin = linearize_stencil(ep.prog->stencil(), {});
  ASSERT_TRUE(lin.has_value());
  // 5 spatial terms x 2 time terms.
  EXPECT_EQ(lin->terms.size(), 10u);
  // First time term scaled by 0.7.
  EXPECT_NEAR(lin->terms[0].coeff, 0.3 * 0.7, 1e-15);
  EXPECT_EQ(lin->terms[0].time_offset, -1);
  EXPECT_NEAR(lin->terms[5].coeff, 0.3 * 0.3, 1e-15);
  EXPECT_EQ(lin->terms[5].time_offset, -2);
}

TEST(Executor, GenericFallbackForNonAffineStencil) {
  // A stencil with min() falls off the affine path; run_reference must
  // still execute it (and run_scheduled must refuse).
  dsl::Program prog("nonaffine");
  dsl::Var j = prog.var("j"), i = prog.var("i");
  dsl::GridRef B = prog.def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 8, 8);
  auto& k = prog.kernel("clamp", {j, i}, dsl::min(B(j, i), dsl::ExprH(0.5)));
  prog.def_stencil("st", B, k[prog.t() - 1]);
  auto grid = ir::make_sp_tensor("B", ir::DataType::f64, {8, 8}, 1, 2);
  GridStorage<double> g(grid);
  g.for_each_interior([&](std::array<std::int64_t, 3> c) {
    g.at(g.slot_for_time(0), c) = static_cast<double>(c[1]);
  });
  run_reference(prog.stencil(), g, 1, 1, Boundary::ZeroHalo);
  EXPECT_DOUBLE_EQ(g.at(g.slot_for_time(1), {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(g.at(g.slot_for_time(1), {0, 3, 0}), 0.5);
  EXPECT_THROW(run_scheduled(prog.stencil(), prog.primary_schedule(), g, 1, 1,
                             Boundary::ZeroHalo),
               Error);
}

TEST(Executor, ThreeDStencilSchedulesCorrectly) {
  dsl::Program prog("exec3d");
  dsl::Var k = prog.var("k"), j = prog.var("j"), i = prog.var("i");
  dsl::GridRef B = prog.def_tensor_3d_timewin("B", 2, 1, ir::DataType::f64, 12, 10, 14);
  auto& kn = prog.kernel("lap", {k, j, i},
                         dsl::ExprH(0.4) * B(k, j, i) + dsl::ExprH(0.1) * B(k, j, i - 1) +
                             dsl::ExprH(0.1) * B(k, j, i + 1) + dsl::ExprH(0.1) * B(k, j - 1, i) +
                             dsl::ExprH(0.1) * B(k, j + 1, i) + dsl::ExprH(0.1) * B(k - 1, j, i) +
                             dsl::ExprH(0.1) * B(k + 1, j, i));
  kn.tile({4, 5, 7})
      .reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"})
      .parallel("k_outer", 3);
  prog.def_stencil("st", B, 0.5 * kn[prog.t() - 1] + 0.5 * kn[prog.t() - 2]);

  auto grid = ir::make_sp_tensor("B", ir::DataType::f64, {12, 10, 14}, 1, 3);
  GridStorage<double> a(grid), b(grid);
  for (int s = 0; s < 3; ++s) {
    a.fill_random(s, 77 + static_cast<std::uint64_t>(s));
    b.fill_random(s, 77 + static_cast<std::uint64_t>(s));
  }
  run_scheduled(prog.stencil(), prog.primary_schedule(), a, 1, 3, Boundary::ZeroHalo);
  run_reference(prog.stencil(), b, 1, 3, Boundary::ZeroHalo);
  EXPECT_EQ(max_relative_error(a, a.slot_for_time(3), b, b.slot_for_time(3)), 0.0);
}

TEST(Executor, RejectsEmptyTimeRange) {
  ExecProgram ep(8, false);
  auto grid = ir::make_sp_tensor("B", ir::DataType::f64, {8, 8}, 1, 3);
  GridStorage<double> g(grid);
  EXPECT_THROW(run_reference(ep.prog->stencil(), g, 5, 4, Boundary::ZeroHalo), Error);
}

}  // namespace
}  // namespace msc::exec
