// Machine-model and cost-model tests: parameter sanity, roofline
// classification, and the mechanistic properties the paper's figures rely
// on (SPM staging beats no-reuse, halo inflation grows with stencil order,
// fp32 halves traffic, ...).

#include <gtest/gtest.h>

#include "machine/cost_model.hpp"
#include "machine/machine.hpp"
#include "machine/roofline.hpp"
#include "workload/stencils.hpp"

namespace msc::machine {
namespace {

TEST(MachineModel, PaperPeaks) {
  const auto sw = sunway_cg();
  // One CG is a quarter of the 3.06 TFlops chip.
  EXPECT_NEAR(sw.peak_gflops(true), 3060.0 / 4, 15.0);
  EXPECT_TRUE(sw.cache_less());
  EXPECT_EQ(sw.spm_bytes_per_core, 64 * 1024);
  EXPECT_EQ(sw.cores, 64);

  const auto mt = matrix_full();
  EXPECT_NEAR(mt.peak_gflops(true), 2048.0, 10.0);
  EXPECT_EQ(mt.cores, 128);
  EXPECT_FALSE(mt.cache_less());

  const auto sn = matrix_sn();
  EXPECT_EQ(sn.cores, 32);

  const auto xeon = xeon_e5_2680v4_dual();
  EXPECT_EQ(xeon.cores, 28);
  EXPECT_GT(xeon.peak_gflops(false), xeon.peak_gflops(true));  // fp32 doubles
}

TEST(Roofline, AttainableIsMinOfPeakAndBandwidth) {
  const auto m = matrix_sn();
  const double low_oi = 0.01;
  EXPECT_NEAR(attainable_gflops(m, low_oi), low_oi * m.mem_bw_gbs, 1e-9);
  const double high_oi = 1e6;
  EXPECT_NEAR(attainable_gflops(m, high_oi), m.peak_gflops(true), 1e-9);
}

TEST(Roofline, StencilIntensityOrdering) {
  // Higher-order box stencils have higher flop/byte than low-order stars.
  auto small = workload::make_program(workload::benchmark("3d7pt_star"), ir::DataType::f64,
                                      {16, 16, 16});
  auto big = workload::make_program(workload::benchmark("2d169pt_box"), ir::DataType::f64,
                                    {64, 64, 0});
  EXPECT_GT(operational_intensity(big->stencil()), operational_intensity(small->stencil()));
}

TEST(Roofline, ClassicIntensityIsMemoryBoundEverywhere) {
  // With Table-4 byte counts every benchmark sits left of both machines'
  // ridge points — the paper's Fig. 9 dots cluster on the bandwidth slope.
  for (const auto& info : workload::all_benchmarks()) {
    auto prog = workload::make_program(info, ir::DataType::f64,
                                       info.ndim == 2 ? std::array<std::int64_t, 3>{64, 64, 0}
                                                      : std::array<std::int64_t, 3>{16, 16, 16});
    EXPECT_TRUE(memory_bound(matrix_sn(), prog->stencil())) << info.name;
  }
}

class CostModelFixture : public ::testing::Test {
 protected:
  /// Cost of one benchmark under (machine, impl) with its paper schedule.
  KernelCost cost(const std::string& bench, const MachineModel& m, const ImplProfile& impl,
                  const std::string& target, bool fp64 = true) {
    const auto& info = workload::benchmark(bench);
    auto prog = workload::make_program(info, fp64 ? ir::DataType::f64 : ir::DataType::f32);
    workload::apply_msc_schedule(*prog, info, target);
    return estimate(m, prog->stencil(), prog->primary_schedule(), impl, 1, fp64);
  }
};

TEST_F(CostModelFixture, SpmPipelineBeatsRowReuseOnSunway) {
  const auto msc = cost("3d7pt_star", sunway_cg(), profile_msc_sunway(), "sunway");
  const auto acc = cost("3d7pt_star", sunway_cg(), profile_openacc_sunway(), "sunway");
  EXPECT_LT(msc.seconds, acc.seconds);
  // The paper's average gap is ~24x; require at least a 5x mechanism gap.
  EXPECT_GT(acc.seconds / msc.seconds, 5.0);
}

TEST_F(CostModelFixture, SunwaySpmFitsBudgetForAllPaperTiles) {
  for (const auto& info : workload::all_benchmarks()) {
    const auto kc = cost(info.name, sunway_cg(), profile_msc_sunway(), "sunway");
    EXPECT_LE(kc.spm_utilization, 1.0) << info.name << " exceeds the 64 KB SPM";
    EXPECT_GT(kc.spm_utilization, 0.0) << info.name;
  }
}

TEST_F(CostModelFixture, SunwayReuseFactorPositive) {
  // Paper §5.2.1: each staged data point reused ~13x for 3d13pt.
  const auto kc = cost("3d13pt_star", sunway_cg(), profile_msc_sunway(), "sunway");
  EXPECT_GT(kc.reuse_factor, 1.0);
  EXPECT_LT(kc.reuse_factor, 100.0);
}

TEST_F(CostModelFixture, LowOrderStencilsAreMemoryBoundOnSunway) {
  EXPECT_TRUE(cost("3d7pt_star", sunway_cg(), profile_msc_sunway(), "sunway").memory_bound);
  EXPECT_TRUE(cost("2d9pt_star", sunway_cg(), profile_msc_sunway(), "sunway").memory_bound);
}

TEST_F(CostModelFixture, HighestOrderBoxIsComputeBoundOnSunwayOnly) {
  // Paper Fig. 9: 2d169pt is compute-bound on Sunway but memory-bound on
  // Matrix (whose bandwidth-to-flops ratio is lower).
  EXPECT_FALSE(cost("2d169pt_box", sunway_cg(), profile_msc_sunway(), "sunway").memory_bound);
  EXPECT_TRUE(cost("2d169pt_box", matrix_sn(), profile_msc_matrix(), "matrix").memory_bound);
}

TEST_F(CostModelFixture, Fp32RoughlyHalvesMemoryTime) {
  const auto f64 = cost("3d7pt_star", sunway_cg(), profile_msc_sunway(), "sunway", true);
  const auto f32 = cost("3d7pt_star", sunway_cg(), profile_msc_sunway(), "sunway", false);
  EXPECT_NEAR(f32.memory_seconds / f64.memory_seconds, 0.5, 0.05);
}

TEST_F(CostModelFixture, ManualOpenMpSlightlySlowerThanMscOnMatrix) {
  const auto msc = cost("3d7pt_star", matrix_sn(), profile_msc_matrix(), "matrix");
  const auto omp = cost("3d7pt_star", matrix_sn(), profile_manual_openmp_matrix(), "matrix");
  const double ratio = omp.seconds / msc.seconds;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.15);  // paper: MSC achieves 1.05x on average
}

TEST_F(CostModelFixture, HalideJitPaysStartup) {
  const auto jit = cost("3d7pt_star", xeon_e5_2680v4_dual(), profile_halide_jit_cpu(), "cpu");
  const auto aot = cost("3d7pt_star", xeon_e5_2680v4_dual(), profile_halide_aot_cpu(), "cpu");
  EXPECT_GT(jit.seconds, aot.seconds + 0.5);  // the JIT compile
  EXPECT_NEAR(jit.seconds_per_step, aot.seconds_per_step, 1e-12);
}

TEST_F(CostModelFixture, HalideIndexingOverheadGrowsWithOrder) {
  const auto m = xeon_e5_2680v4_dual();
  const auto small_msc = cost("3d7pt_star", m, profile_msc_cpu(), "cpu");
  const auto small_aot = cost("3d7pt_star", m, profile_halide_aot_cpu(), "cpu");
  const auto big_msc = cost("2d121pt_box", m, profile_msc_cpu(), "cpu");
  const auto big_aot = cost("2d121pt_box", m, profile_halide_aot_cpu(), "cpu");
  // Paper Fig. 12: AOT competitive (here: compute overhead hidden under the
  // memory roof) on small stencils, behind MSC on large ones.
  EXPECT_LE(small_aot.seconds, small_msc.seconds * 1.1);
  EXPECT_GT(big_aot.seconds, big_msc.seconds);
}

TEST_F(CostModelFixture, TrafficScalesWithPoints) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64);
  workload::apply_msc_schedule(*prog, info, "sunway");
  const auto small = estimate_subgrid(sunway_cg(), prog->stencil(), prog->primary_schedule(),
                                      profile_msc_sunway(), {64, 64, 64}, 1, true);
  const auto large = estimate_subgrid(sunway_cg(), prog->stencil(), prog->primary_schedule(),
                                      profile_msc_sunway(), {128, 64, 64}, 1, true);
  EXPECT_NEAR(static_cast<double>(large.traffic_bytes) /
                  static_cast<double>(small.traffic_bytes),
              2.0, 0.1);
}

TEST_F(CostModelFixture, EstimateRejectsZeroTimesteps) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64);
  EXPECT_THROW(estimate(sunway_cg(), prog->stencil(), prog->primary_schedule(),
                        profile_msc_sunway(), 0, true),
               Error);
}

}  // namespace
}  // namespace msc::machine
