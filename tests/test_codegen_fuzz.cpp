// Differential fuzzing of the code generator: random affine 2-D stencils
// (random radius, neighbor subset, coefficients, tile sizes, 2 time deps)
// are AOT-generated as serial C, compiled with the host compiler, executed,
// and their checksums compared against the in-process host executor.
// Any divergence in index math, window rotation, remainder clamping or
// coefficient emission fails the bit-comparison.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "check/oracles.hpp"
#include "dsl/program.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

// The fuzzer drives the host C compiler; skip loudly when there is none.
#define MSC_REQUIRE_HOST_CC()                                                  \
  do {                                                                         \
    if (!msc::check::compiler_available())                                     \
      GTEST_SKIP() << "no host C compiler ('cc') on PATH; skipping "           \
                      "differential codegen fuzzing";                          \
  } while (0)

namespace msc {
namespace {

struct FuzzCase {
  std::unique_ptr<dsl::Program> prog;
  std::int64_t n;

  explicit FuzzCase(std::uint64_t seed) {
    Rng rng(seed);
    n = rng.next_int(12, 28);
    const std::int64_t radius = rng.next_int(1, 3);
    prog = std::make_unique<dsl::Program>("fuzz" + std::to_string(seed));
    dsl::Var j = prog->var("j"), i = prog->var("i");
    dsl::GridRef B = prog->def_tensor_2d_timewin("B", 2, radius, ir::DataType::f64, n, n);

    dsl::ExprH rhs = dsl::ExprH(rng.next_real(0.1, 0.4)) * B(j, i);
    for (std::int64_t dj = -radius; dj <= radius; ++dj)
      for (std::int64_t di = -radius; di <= radius; ++di) {
        if ((dj == 0 && di == 0) || rng.next_double() < 0.6) continue;
        rhs = rhs + dsl::ExprH(rng.next_real(-0.08, 0.08)) * B(j + dj, i + di);
      }
    auto& k = prog->kernel("k", {j, i}, rhs);
    k.tile({rng.next_int(2, n), rng.next_int(2, n)})
        .reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
    prog->def_stencil("st", B,
                      rng.next_real(0.4, 0.7) * k[prog->t() - 1] +
                          rng.next_real(0.2, 0.4) * k[prog->t() - 2]);
  }
};

/// Host-executor checksum with the generated code's seeding scheme.
double host_checksum(dsl::Program& prog, std::int64_t n, std::int64_t timesteps) {
  prog.input(dsl::GridRef(prog.stencil().state()), 42);
  prog.run(1, timesteps);
  double sum = 0.0;
  for (std::int64_t a = 0; a < n; ++a)
    for (std::int64_t b = 0; b < n; ++b) sum += prog.value_at(timesteps, {a, b, 0});
  return sum;
}

class CodegenDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodegenDifferential, GeneratedCMatchesHostBitwise) {
  MSC_REQUIRE_HOST_CC();
  FuzzCase fc(GetParam());
  const auto dir = std::filesystem::temp_directory_path() /
                   ("msc_fuzz_" + std::to_string(GetParam()));
  std::filesystem::create_directories(dir);
  fc.prog->compile_to_source_code("c", dir.string());

  const std::string exe = (dir / "prog").string();
  const std::string cmd = "cc -O2 -std=c99 -o " + exe + " " +
                          (dir / (fc.prog->name() + ".c")).string() + " -lm 2>&1 && " + exe +
                          " 5";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buf[256];
  std::string out;
  while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  ASSERT_EQ(pclose(pipe), 0) << out;

  double generated = 0.0;
  ASSERT_EQ(std::sscanf(out.c_str(), "checksum %lf", &generated), 1) << out;
  const double host = host_checksum(*fc.prog, fc.n, 5);
  EXPECT_NEAR(generated, host, std::abs(host) * 1e-12 + 1e-12)
      << "seed " << GetParam() << "\n"
      << fc.prog->dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenDifferential, ::testing::Range<std::uint64_t>(1, 11));

TEST(OpenAccListing, CompilesAsSerialC) {
  MSC_REQUIRE_HOST_CC();
  // The OpenACC baseline file must be valid C: unknown pragmas warn, the
  // program still runs and prints a checksum.
  FuzzCase fc(99);
  const auto dir = std::filesystem::temp_directory_path() / "msc_acc_compile";
  std::filesystem::create_directories(dir);
  fc.prog->compile_to_source_code("openacc", dir.string());
  const std::string exe = (dir / "prog").string();
  const std::string cmd = "cc -O2 -std=c99 -Wno-unknown-pragmas -o " + exe + " " +
                          (dir / (fc.prog->name() + "_acc.c")).string() + " -lm 2>&1 && " +
                          exe + " 3";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buf[256];
  std::string out;
  while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  ASSERT_EQ(pclose(pipe), 0) << out;
  EXPECT_NE(out.find("checksum"), std::string::npos);
}

}  // namespace
}  // namespace msc
