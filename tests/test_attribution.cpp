// Tests of the measured-roofline attribution engine (src/prof/attribution):
// the analytic plan walk against hand-computed FLOP/byte counts, the phase
// bucketing of flight events, the roofline join, and the msc-attr-v1
// document schema.  The analytic fixture is the whole point: every number
// here is derivable by hand from the stencil shape, so a traffic-model
// regression shows up as an exact integer mismatch, not a tolerance drift.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "machine/machine.hpp"
#include "prof/attribution.hpp"
#include "prof/flight.hpp"
#include "workload/report.hpp"
#include "workload/stencils.hpp"

namespace msc::prof {
namespace {

// ---- the analytic walk, hand-computed -----------------------------------

// 3d7pt_star on a 16^3 grid, radius 1, fp64, steps t=1..3:
//   terms          = 7 spatial points x 2 time slots            = 14
//   interior       = 16^3                                       = 4096
//   padded         = 18^3 (one-cell halo)                       = 5832
//   flops          = 2 * 14 * 4096 * 3                          = 344064
//   bytes_written  = 3 * 4096 * 8                               = 98304
//   bytes_read     = 3 steps * 2 slots * 5832 * 8               = 279936
TEST(Attribution, SweepPlanCountsMatchHandComputation) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  workload::apply_msc_schedule(*prog, info, "cpu");
  const auto cost = attribute_plan(prog->stencil(), prog->primary_schedule(),
                                   AttrBackend::Sweep, sizeof(double), 1, 3);
  EXPECT_EQ(cost.steps, 3);
  EXPECT_EQ(cost.terms, 14);
  EXPECT_EQ(cost.interior_points, 4096);
  EXPECT_EQ(cost.input_slots, 2);
  EXPECT_EQ(cost.flops, 344064);
  EXPECT_EQ(cost.bytes_written, 98304);
  EXPECT_EQ(cost.bytes_read, 279936);
  EXPECT_EQ(cost.wedge_depth, 1);
  EXPECT_EQ(cost.blocks, 3);  // per-step engine: one "block" per step
  EXPECT_DOUBLE_EQ(cost.oi, 344064.0 / (98304.0 + 279936.0));
}

// 2d9pt_star on 32^2, radius 2, fp64, one step: 9 x 2 = 18 terms,
// interior 1024, padded 36^2 = 1296.
TEST(Attribution, TwoDStarCountsMatchHandComputation) {
  const auto& info = workload::benchmark("2d9pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {32, 32, 0});
  workload::apply_msc_schedule(*prog, info, "cpu");
  const auto cost = attribute_plan(prog->stencil(), prog->primary_schedule(),
                                   AttrBackend::Sweep, sizeof(double), 1, 1);
  EXPECT_EQ(cost.terms, 18);
  EXPECT_EQ(cost.interior_points, 1024);
  EXPECT_EQ(cost.flops, 2 * 18 * 1024);
  EXPECT_EQ(cost.bytes_written, 1024 * 8);
  EXPECT_EQ(cost.bytes_read, 2 * 1296 * 8);
}

// The temporal walk must agree with the engine's own lowering: same wedge
// depth, same block count — and the block-level reuse is exactly what makes
// its analytic intensity beat the per-step engine's.
TEST(Attribution, TemporalReuseMatchesEngineLowering) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  workload::apply_msc_schedule(*prog, info, "cpu");
  prog->primary_kernel().time_tile(2);
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();

  const auto sweep = attribute_plan(st, sched, AttrBackend::Sweep, 8, 1, 4);
  const auto temporal = attribute_plan(st, sched, AttrBackend::Temporal, 8, 1, 4);
  EXPECT_EQ(temporal.flops, sweep.flops) << "fusing time never changes the math";
  EXPECT_EQ(temporal.bytes_written, sweep.bytes_written);
  EXPECT_GT(temporal.wedge_depth, 1);
  EXPECT_LT(temporal.blocks, temporal.steps);
  EXPECT_LT(temporal.bytes_read, sweep.bytes_read) << "block reuse is the whole point";
  EXPECT_GT(temporal.oi, sweep.oi);

  exec::GridStorage<double> g(st.state());
  for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 3);
  exec::TemporalExecInfo ti;
  exec::run_scheduled_temporal(st, sched, g, 1, 4, exec::Boundary::ZeroHalo, {}, nullptr,
                               &ti);
  ASSERT_TRUE(ti.temporal) << ti.fallback_reason;
  EXPECT_EQ(temporal.wedge_depth, ti.wedge_depth);
  EXPECT_EQ(temporal.blocks, ti.blocks);
}

// ---- phase bucketing ----------------------------------------------------

FlightEvent ev(FlightKind kind, std::uint64_t dur_ns) {
  FlightEvent e;
  e.kind = kind;
  e.dur_ns = dur_ns;
  return e;
}

TEST(Attribution, BucketPhasesSplitsLeafKindsAndComputesDispatch) {
  std::vector<FlightThreadDump> dumps(2);
  dumps[0].tid = 0;
  dumps[0].events = {ev(FlightKind::RowChunk, 10'000'000), ev(FlightKind::AotCompile, 2'000'000),
                     ev(FlightKind::Step, 99'000'000)};  // structural parent: not bucketed
  dumps[1].tid = 1;
  dumps[1].events = {ev(FlightKind::WedgeWait, 5'000'000), ev(FlightKind::Wedge, 4'000'000)};

  const auto p = bucket_phases(dumps, 0.020);
  EXPECT_DOUBLE_EQ(p.compute_s, 0.014);    // RowChunk + Wedge
  EXPECT_DOUBLE_EQ(p.wedge_wait_s, 0.005);
  EXPECT_DOUBLE_EQ(p.aot_pipeline_s, 0.002);
  EXPECT_DOUBLE_EQ(p.wall_s, 0.020);
  // Busiest thread: tid 0 with 10+2 = 12 ms attributed; dispatch is the rest.
  EXPECT_DOUBLE_EQ(p.dispatch_s, 0.008);
  EXPECT_EQ(p.events, 4);  // the Step parent span is excluded
}

TEST(Attribution, BucketPhasesClampsDispatchAtZero) {
  std::vector<FlightThreadDump> dumps(1);
  dumps[0].events = {ev(FlightKind::RowChunk, 50'000'000)};
  const auto p = bucket_phases(dumps, 0.010);  // wall < attributed (clock skew)
  EXPECT_DOUBLE_EQ(p.dispatch_s, 0.0);
}

// ---- the roofline join --------------------------------------------------

TEST(Attribution, AttributeRunJoinsAgainstTheRoofline) {
  machine::MachineModel m;
  m.name = "synthetic";
  m.mem_bw_gbs = 100.0;  // ridge at peak/bw flop/byte

  PlanCost cost;
  cost.flops = 2'000'000'000;
  cost.bytes_read = 800'000'000;
  cost.bytes_written = 200'000'000;
  cost.oi = 2.0;  // 2e9 / 1e9

  PhaseBreakdown phases;
  phases.wall_s = 1.0;

  const auto row = attribute_run("fixture", AttrBackend::Sweep, cost, phases, m);
  EXPECT_DOUBLE_EQ(row.measured_gflops, 2.0);  // 2e9 flops / 1 s
  // attainable = min(peak, oi * bw) = min(peak, 200 GF/s)
  const double expected_attainable = std::min(m.peak_gflops(), 2.0 * 100.0);
  EXPECT_DOUBLE_EQ(row.attainable_gflops, expected_attainable);
  EXPECT_DOUBLE_EQ(row.pct_of_attainable, 100.0 * 2.0 / expected_attainable);
  EXPECT_EQ(row.memory_bound, cost.oi < m.ridge_flop_per_byte());
}

// ---- document schema ----------------------------------------------------

TEST(Attribution, JsonSchemaAndMarkdownRows) {
  machine::MachineModel m;
  m.name = "synthetic";
  m.mem_bw_gbs = 50.0;

  PlanCost cost;
  cost.flops = 1000;
  cost.bytes_read = 400;
  cost.bytes_written = 100;
  cost.oi = 2.0;
  PhaseBreakdown phases;
  phases.wall_s = 0.5;

  auto ok = attribute_run("3d7pt_star", AttrBackend::Sweep, cost, phases, m);
  auto fell_back = attribute_run("3d7pt_star", AttrBackend::Aot, cost, phases, m);
  fell_back.ran = false;
  fell_back.note = "no host C compiler";

  const auto doc = attribution_json({ok, fell_back}, m);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "msc-attr-v1");
  EXPECT_EQ(doc.find("machine")->find("name")->as_string(), "synthetic");
  const auto& rows = doc.find("rows")->elements();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].find("benchmark")->as_string(), "3d7pt_star");
  EXPECT_EQ(rows[0].find("backend")->as_string(), "sweep");
  EXPECT_TRUE(rows[0].find("ran")->as_bool());
  EXPECT_EQ(rows[0].find("oi_flop_per_byte")->as_number(), 2.0);
  EXPECT_FALSE(rows[1].find("ran")->as_bool());
  EXPECT_EQ(rows[1].find("note")->as_string(), "no host C compiler");

  const std::string md = attribution_markdown({ok, fell_back}, m);
  EXPECT_NE(md.find("| benchmark |"), std::string::npos);
  EXPECT_NE(md.find("3d7pt_star"), std::string::npos);
  EXPECT_NE(md.find("no host C compiler"), std::string::npos);
}

// ---- end to end against a real run --------------------------------------

TEST(Attribution, MeasuredRunProducesNonEmptyPhases) {
  const auto& info = workload::benchmark("3d7pt_star");
  auto prog = workload::make_program(info, ir::DataType::f64, {16, 16, 16});
  workload::apply_msc_schedule(*prog, info, "cpu");
  const auto& st = prog->stencil();
  const auto& sched = prog->primary_schedule();
  exec::GridStorage<double> g(st.state());
  for (int s = 0; s < g.slots(); ++s) g.fill_random(s, 3);

  auto& flight = global_flight();
  flight.clear();
  exec::run_scheduled(st, sched, g, 1, 3, exec::Boundary::ZeroHalo);
  const auto phases = bucket_phases(flight.drain(), 1.0);
  EXPECT_GT(phases.events, 0);
  EXPECT_GT(phases.compute_s, 0.0);
  EXPECT_DOUBLE_EQ(phases.wedge_wait_s, 0.0);  // per-step engine never waits
  EXPECT_DOUBLE_EQ(phases.aot_pipeline_s, 0.0);
  flight.clear();
}

}  // namespace
}  // namespace msc::prof
