// Workload-suite tests: every Table-4 benchmark builds through the DSL,
// its IR-derived characteristics match the paper where derivable, the
// Table-5 schedules apply, and the DSL listings exist for Table 6.

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "workload/report.hpp"
#include "workload/stencils.hpp"

namespace msc::workload {
namespace {

TEST(Benchmarks, SuiteMatchesTable4Layout) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "2d9pt_star");
  EXPECT_EQ(all[7].name, "3d31pt_star");
  for (const auto& b : all) EXPECT_EQ(b.time_deps, 2) << b.name;
}

TEST(Benchmarks, LookupByName) {
  EXPECT_EQ(benchmark("3d25pt_star").radius, 4);
  EXPECT_THROW(benchmark("5d_star"), Error);
}

TEST(Benchmarks, PointCountsMatchNames) {
  EXPECT_EQ(benchmark("2d9pt_star").points, 9);
  EXPECT_EQ(benchmark("2d9pt_box").points, 9);
  EXPECT_EQ(benchmark("2d121pt_box").points, 121);
  EXPECT_EQ(benchmark("2d169pt_box").points, 169);
  EXPECT_EQ(benchmark("3d7pt_star").points, 7);
  EXPECT_EQ(benchmark("3d13pt_star").points, 13);
  EXPECT_EQ(benchmark("3d25pt_star").points, 25);
  EXPECT_EQ(benchmark("3d31pt_star").points, 31);
}

class BenchmarkProgram : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkProgram, BuildsAndMatchesTable4Bytes) {
  const auto& info = benchmark(GetParam());
  const auto grid = info.ndim == 2 ? std::array<std::int64_t, 3>{48, 48, 0}
                                   : std::array<std::int64_t, 3>{24, 24, 24};
  auto prog = make_program(info, ir::DataType::f64, grid);
  const auto& st = prog->stencil();
  ASSERT_EQ(st.terms().size(), 2u);  // Table 4: Time Dep. = 2
  const auto& stats = st.terms().front().kernel->stats();
  // Table 4's Read/Write bytes derive exactly from the point count.
  EXPECT_EQ(stats.bytes_read, info.paper_read_bytes) << info.name;
  EXPECT_EQ(stats.bytes_written, info.paper_write_bytes) << info.name;
  EXPECT_EQ(stats.points_read, info.points) << info.name;
  EXPECT_EQ(stats.max_radius, info.radius) << info.name;
  EXPECT_EQ(st.time_window(), 3) << info.name;
  // Distinct-coefficient formulation: ops = points muls + (points-1) adds.
  EXPECT_EQ(stats.ops.plus_minus_times(), 2 * info.points - 1) << info.name;
}

TEST_P(BenchmarkProgram, RunsAndValidatesAgainstReference) {
  const auto& info = benchmark(GetParam());
  const auto grid = info.ndim == 2 ? std::array<std::int64_t, 3>{32, 32, 0}
                                   : std::array<std::int64_t, 3>{16, 16, 16};
  auto prog = make_program(info, ir::DataType::f64, grid);
  apply_msc_schedule(*prog, info, "matrix",
                     info.ndim == 2 ? std::array<std::int64_t, 3>{8, 8, 0}
                                    : std::array<std::int64_t, 3>{4, 8, 8});
  prog->input(dsl::GridRef(prog->stencil().state()), 13);
  EXPECT_LT(prog->relative_error_vs_reference(1, 4), 1e-10) << info.name;
}

INSTANTIATE_TEST_SUITE_P(AllEight, BenchmarkProgram,
                         ::testing::Values("2d9pt_star", "2d9pt_box", "2d121pt_box",
                                           "2d169pt_box", "3d7pt_star", "3d13pt_star",
                                           "3d25pt_star", "3d31pt_star"));

TEST(Schedules, SunwayScheduleBuildsSpmPipeline) {
  const auto& info = benchmark("3d7pt_star");
  auto prog = make_program(info, ir::DataType::f64);
  apply_msc_schedule(*prog, info, "sunway");
  const auto& sched = prog->primary_schedule();
  EXPECT_TRUE(sched.has_spm_pipeline());
  EXPECT_EQ(sched.parallel_threads(), 64);
  EXPECT_EQ(sched.tile_extent(0), 2);   // Table 5: (2, 8, 64)
  EXPECT_EQ(sched.tile_extent(1), 8);
  EXPECT_EQ(sched.tile_extent(2), 64);
  // SPM footprint must fit 64 KB: staged tile + write tile, fp64.
  EXPECT_LE(sched.spm_bytes(), 64 * 1024);
}

TEST(Schedules, MatrixScheduleUsesVectorizeNotSpm) {
  const auto& info = benchmark("2d9pt_star");
  auto prog = make_program(info, ir::DataType::f64);
  apply_msc_schedule(*prog, info, "matrix");
  const auto& sched = prog->primary_schedule();
  EXPECT_FALSE(sched.has_spm_pipeline());
  EXPECT_EQ(sched.parallel_threads(), 32);
  EXPECT_TRUE(sched.axes().back().vectorize);
}

TEST(Schedules, AllPaperTilesFitSunwaySpm) {
  for (const auto& info : all_benchmarks()) {
    auto prog = make_program(info, ir::DataType::f64);
    apply_msc_schedule(*prog, info, "sunway");
    EXPECT_LE(prog->primary_schedule().spm_bytes(), 64 * 1024)
        << info.name << " Table-5 tile overflows the SPM";
  }
}

TEST(DslListing, ExistsAndScalesGently) {
  // Table 6: MSC listings are tens of lines; growth with stencil order is
  // mild compared to generated/manual code.
  const int small = count_loc(dsl_listing(benchmark("3d7pt_star")));
  const int large = count_loc(dsl_listing(benchmark("2d169pt_box")));
  EXPECT_GE(small, 15);
  EXPECT_LE(small, 60);
  EXPECT_GT(large, small);
  EXPECT_LE(large, 90);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt_ratio(2.0), "2.00x");
  EXPECT_NE(fmt_seconds(0.005).find("ms"), std::string::npos);
  EXPECT_NE(fmt_seconds(2.5).find(" s"), std::string::npos);
  EXPECT_NE(fmt_bytes(2048).find("KiB"), std::string::npos);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

}  // namespace
}  // namespace msc::workload
