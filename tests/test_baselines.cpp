// Baseline-comparator tests: the qualitative orderings the paper's
// evaluation reports must hold across the modelled systems.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "workload/report.hpp"

namespace msc::baselines {
namespace {

constexpr std::int64_t kSteps = 100;

TEST(SunwayComparison, MscBeatsOpenAccOnEveryBenchmark) {
  for (const auto& info : workload::all_benchmarks()) {
    const double msc = msc_seconds(info, "sunway", kSteps, true);
    const double acc = openacc_sunway_seconds(info, kSteps, true);
    EXPECT_GT(acc / msc, 2.0) << info.name;
  }
}

TEST(SunwayComparison, AverageSpeedupInPaperBand) {
  // Paper Fig. 7: average 24.4x (fp64) / 20.7x (fp32).  The shape target:
  // a clearly order-of-magnitude average gap, larger on high-order
  // stencils than on the 2d9pt pair.
  std::vector<double> speedups;
  for (const auto& info : workload::all_benchmarks())
    speedups.push_back(openacc_sunway_seconds(info, kSteps, true) /
                       msc_seconds(info, "sunway", kSteps, true));
  const double avg = workload::geomean(speedups);
  EXPECT_GT(avg, 8.0);
  EXPECT_LT(avg, 80.0);
  const double low_order = openacc_sunway_seconds(workload::benchmark("2d9pt_star"), kSteps, true) /
                           msc_seconds(workload::benchmark("2d9pt_star"), "sunway", kSteps, true);
  const double high_order =
      openacc_sunway_seconds(workload::benchmark("2d121pt_box"), kSteps, true) /
      msc_seconds(workload::benchmark("2d121pt_box"), "sunway", kSteps, true);
  EXPECT_GT(high_order, low_order);  // "especially on high-order stencils"
}

TEST(MatrixComparison, MscWithinFivePercentOfManualOpenMp) {
  // Paper Fig. 8: MSC ~1.05x of hand-tuned OpenMP on average.
  std::vector<double> ratios;
  for (const auto& info : workload::all_benchmarks())
    ratios.push_back(manual_openmp_matrix_seconds(info, kSteps, true) /
                     msc_seconds(info, "matrix", kSteps, true));
  const double avg = workload::geomean(ratios);
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, 1.10);
}

TEST(HalideComparison, JitSlowestAotMiddleOrdering) {
  // Paper Fig. 12: vs Halide-JIT, AOT ~2.92x and MSC ~3.33x on average.
  std::vector<double> aot_speedup, msc_speedup;
  for (const auto& info : workload::all_benchmarks()) {
    const double jit = halide_seconds(info, true, kSteps, true);
    aot_speedup.push_back(jit / halide_seconds(info, false, kSteps, true));
    msc_speedup.push_back(jit / msc_seconds(info, "cpu", kSteps, true));
  }
  EXPECT_GT(workload::geomean(aot_speedup), 1.3);
  EXPECT_GT(workload::geomean(msc_speedup), workload::geomean(aot_speedup));
}

TEST(HalideComparison, AotWinsSmallLosesLarge) {
  const auto& small = workload::benchmark("3d7pt_star");
  const auto& large = workload::benchmark("2d121pt_box");
  EXPECT_LE(halide_seconds(small, false, kSteps, true),
            msc_seconds(small, "cpu", kSteps, true) * 1.1);
  EXPECT_GT(halide_seconds(large, false, kSteps, true), msc_seconds(large, "cpu", kSteps, true));
}

TEST(PatusComparison, MscFasterEverywhere) {
  // Paper Fig. 13: 5.94x average; require >2x everywhere and the worst
  // degradation on high-order 3-D stars (discrete unaligned accesses).
  std::vector<double> speedups;
  for (const auto& info : workload::all_benchmarks())
    speedups.push_back(patus_seconds(info, kSteps, true) /
                       msc_seconds(info, "cpu", kSteps, true));
  for (std::size_t n = 0; n < speedups.size(); ++n) EXPECT_GT(speedups[n], 2.0);
  const double avg = workload::geomean(speedups);
  EXPECT_GT(avg, 3.0);
  EXPECT_LT(avg, 15.0);
}

TEST(PhysisComparison, MscFasterAndGapGrowsWithOrder) {
  // Paper Fig. 14 (Table 8 config): 9.88x average, worst for high-order
  // stencils whose halo volume floods the centralized runtime.
  const std::array<std::int64_t, 3> grid2d{512, 896, 0};  // scaled Table-8 domain
  const std::array<std::int64_t, 3> grid3d{128, 128, 448};
  const auto& low = workload::benchmark("3d7pt_star");
  const auto& high = workload::benchmark("3d25pt_star");
  const double low_gap =
      physis_seconds(low, grid3d, {2, 2, 7}, kSteps, true) /
      msc_distributed_cpu_seconds(low, grid3d, {2, 2, 7}, 1, kSteps, true);
  const double high_gap =
      physis_seconds(high, grid3d, {2, 2, 7}, kSteps, true) /
      msc_distributed_cpu_seconds(high, grid3d, {2, 2, 7}, 1, kSteps, true);
  EXPECT_GT(low_gap, 1.0);
  EXPECT_GT(high_gap, low_gap);

  const auto& low2d = workload::benchmark("2d9pt_star");
  const double gap2d = physis_seconds(low2d, grid2d, {4, 7}, kSteps, true) /
                       msc_distributed_cpu_seconds(low2d, grid2d, {4, 7}, 1, kSteps, true);
  EXPECT_GT(gap2d, 1.0);
}

TEST(Baselines, Fp32NeverSlowerAndFasterWhenMemoryBound) {
  // Sunway CPEs have no extra fp32 rate, so fp32 gains come from halved
  // traffic — compute-bound 2d169pt stays flat, everything else speeds up.
  for (const auto& info : workload::all_benchmarks()) {
    const double f32 = msc_seconds(info, "sunway", kSteps, false);
    const double f64 = msc_seconds(info, "sunway", kSteps, true);
    EXPECT_LE(f32, f64) << info.name;
  }
  EXPECT_LT(msc_seconds(workload::benchmark("3d7pt_star"), "sunway", kSteps, false),
            msc_seconds(workload::benchmark("3d7pt_star"), "sunway", kSteps, true));
}

}  // namespace
}  // namespace msc::baselines
