// Differential battery for the time-skewed temporal engine
// (exec/temporal_sweep): wedge lowering must cover every (step, point)
// exactly once with every clamp resolved at lowering time, and
// run_scheduled_temporal must be bit-identical to the per-point
// interpreter for every dtype, time depth and wedge shape — including odd
// extents that force remainder wedges, skews clamped at the grid
// boundary, wedge depths past the stencil's time window, single-row
// grids, and over-subscribed parallel plans.  Randomized cases shrink to
// a minimal reproducer on failure (check/shrink).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "check/case_gen.hpp"
#include "check/shrink.hpp"
#include "dsl/program.hpp"
#include "exec/executor.hpp"
#include "exec/grid.hpp"
#include "exec/temporal_sweep.hpp"
#include "support/thread_pool.hpp"

namespace msc::exec {
namespace {

// The CI host may expose a single core, where the global pool cannot
// exercise the chunk-wavefront DAG; every parallel test injects this pool
// instead (the yield-based waits make progress even over-subscribed).
ThreadPool& test_pool() {
  static ThreadPool pool(4);
  return pool;
}

// Runs the interpreter and the temporal engine from identically seeded
// grids and compares every ring slot's interior bit for bit, so the whole
// retained window — not just the final step — must agree.
template <typename T>
::testing::AssertionResult temporal_bit_identical(const ir::StencilDef& st,
                                                  const schedule::Schedule& sched,
                                                  std::int64_t steps, std::uint64_t seed,
                                                  TemporalOptions topts = {}) {
  GridStorage<T> gi(st.state());
  GridStorage<T> gt(st.state());
  for (int s = 0; s < gi.slots(); ++s) {
    gi.fill_random(s, seed + static_cast<std::uint64_t>(s));
    gt.fill_random(s, seed + static_cast<std::uint64_t>(s));
  }
  run_scheduled_interpreted(st, sched, gi, 1, steps, Boundary::ZeroHalo);
  TemporalExecInfo info;
  run_scheduled_temporal(st, sched, gt, 1, steps, Boundary::ZeroHalo, {}, nullptr, &info,
                         topts);
  if (!info.temporal)
    return ::testing::AssertionFailure()
           << "unexpected fallback: " << info.fallback_reason;
  for (int s = 0; s < gi.slots(); ++s) {
    const auto vi = gi.interior_values(s);
    const auto vt = gt.interior_values(s);
    if (vi.size() != vt.size())
      return ::testing::AssertionFailure() << "slot " << s << " size mismatch";
    for (std::size_t p = 0; p < vi.size(); ++p) {
      if (vi[p] != vt[p])
        return ::testing::AssertionFailure()
               << "slot " << s << " diverges at flat index " << p << ": interpreted "
               << vi[p] << " vs temporal " << vt[p] << " (wedge_depth="
               << info.wedge_depth << " width=" << info.wedge_width << " blocks="
               << info.blocks << " dep_span=" << info.dep_span << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// 2-D program with odd extents, radius 1, a three-deep time window and a
// tiled+reordered schedule: remainder tiles in both dimensions and
// boundary-clamped skews at every wedge rank.
std::unique_ptr<dsl::Program> odd_2d_program(std::int64_t time_depth = 1,
                                             std::int64_t time_width = 0) {
  auto prog = std::make_unique<dsl::Program>("tt2d");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 3, 1, ir::DataType::f64, 19, 23);
  auto& k = prog->kernel("k", {j, i},
                         dsl::ExprH(0.2) * B(j, i) + dsl::ExprH(0.2) * B(j - 1, i) +
                             dsl::ExprH(0.2) * B(j + 1, i) + dsl::ExprH(0.2) * B(j, i - 1) +
                             dsl::ExprH(0.2) * B(j, i + 1));
  k.tile({5, 8}).reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
  if (time_depth > 1) k.time_tile(time_depth, time_width);
  prog->def_stencil("st", B,
                    0.5 * k[prog->t() - 1] + 0.3 * k[prog->t() - 2] + 0.2 * k[prog->t() - 3]);
  return prog;
}

// 3-D program with odd extents and a radius-2 star along dim 0, so the
// per-step skew is 2 rows and wedge clamps trigger on both faces.
std::unique_ptr<dsl::Program> odd_3d_program(ir::DataType dtype) {
  auto prog = std::make_unique<dsl::Program>("tt3d");
  auto kv = prog->var("k"), j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_3d_timewin("B", 2, 2, dtype, 11, 9, 13);
  auto& k = prog->kernel("k", {kv, j, i},
                         dsl::ExprH(0.3) * B(kv, j, i) + dsl::ExprH(0.15) * B(kv - 2, j, i) +
                             dsl::ExprH(0.15) * B(kv + 2, j, i) +
                             dsl::ExprH(0.1) * B(kv - 1, j, i) +
                             dsl::ExprH(0.1) * B(kv + 1, j, i) +
                             dsl::ExprH(0.1) * B(kv, j - 1, i) +
                             dsl::ExprH(0.1) * B(kv, j, i + 1));
  k.tile({4, 4, 8}).reorder({"k_outer", "j_outer", "i_outer", "k_inner", "j_inner", "i_inner"});
  prog->def_stencil("st", B, 0.7 * k[prog->t() - 1] + 0.3 * k[prog->t() - 2]);
  return prog;
}

// ---- lowering properties -------------------------------------------------

// Every local step of a block must cover every interior point exactly
// once, for full and remainder wedge sets alike — the clamps and the
// remainder resolution happen at lowering time, so this is checkable
// without executing anything.
void expect_each_step_covers_once(const WedgeSet& set,
                                  const std::array<std::int64_t, 3>& extent, int ndim) {
  std::int64_t interior = 1;
  for (int d = 0; d < ndim; ++d) interior *= extent[static_cast<std::size_t>(d)];
  for (std::int64_t s = 0; s < set.depth; ++s) {
    std::vector<int> hits(static_cast<std::size_t>(interior), 0);
    for (const auto& wedge : set.wedges) {
      for (const auto& ws : wedge.steps) {
        if (ws.step != s) continue;
        for (const auto& t : ws.tiles) {
          EXPECT_GE(t.lo[0], ws.lo0);
          EXPECT_LE(t.hi[0], ws.hi0);
          std::array<std::int64_t, 3> c{0, 0, 0};
          for (c[0] = t.lo[0]; c[0] < t.hi[0]; ++c[0])
            for (c[1] = t.lo[1]; c[1] < t.hi[1]; ++c[1])
              for (c[2] = t.lo[2]; c[2] < t.hi[2]; ++c[2]) {
                std::int64_t flat = 0;
                for (int d = 0; d < ndim; ++d)
                  flat = flat * extent[static_cast<std::size_t>(d)] +
                         c[static_cast<std::size_t>(d)];
                ++hits[static_cast<std::size_t>(flat)];
              }
        }
      }
    }
    for (std::size_t p = 0; p < hits.size(); ++p)
      ASSERT_EQ(hits[p], 1) << "step " << s << " covers flat point " << p << " "
                            << hits[p] << " times";
  }
}

TEST(LowerTemporal, WedgeStepsCoverEachStepExactlyOnce) {
  auto prog = odd_2d_program();
  const LoopPlan plan = build_loop_plan(prog->primary_schedule());
  TemporalOptions opts;
  opts.wedge_depth = 3;
  opts.wedge_width = 5;
  const TemporalPlan tp = lower_temporal(plan, 4, 1, 1, 7, opts);
  EXPECT_EQ(tp.wedge_depth, 3);
  EXPECT_EQ(tp.full_blocks, 2);
  EXPECT_EQ(tp.remainder.depth, 1);
  EXPECT_EQ(tp.blocks(), 3);
  // Wedge indices must equal vector positions even when boundary clamps
  // empty out whole wedges (chunk math runs in wedge-index space).
  for (std::size_t w = 0; w < tp.full.wedges.size(); ++w)
    EXPECT_EQ(tp.full.wedges[w].index, static_cast<std::int64_t>(w));
  expect_each_step_covers_once(tp.full, tp.extent, tp.ndim);
  expect_each_step_covers_once(tp.remainder, tp.extent, tp.ndim);
}

TEST(LowerTemporal, DepthBeyondStepCountClampsToStepCount) {
  auto prog = odd_2d_program();
  const LoopPlan plan = build_loop_plan(prog->primary_schedule());
  TemporalOptions opts;
  opts.wedge_depth = 16;  // only 5 steps exist
  const TemporalPlan tp = lower_temporal(plan, 4, 1, 1, 5, opts);
  EXPECT_EQ(tp.wedge_depth, 5);
  EXPECT_EQ(tp.full_blocks, 1);
  EXPECT_EQ(tp.remainder.depth, 0);
  expect_each_step_covers_once(tp.full, tp.extent, tp.ndim);
}

TEST(LowerTemporal, DegenerateSkewWiderThanWedgeStillCovers) {
  // Radius 2, wedge width 1: the skew exceeds the wedge width, so a step's
  // footprint lies entirely outside its own wedge's step-0 rows and the
  // dependency span gets deep.  The lowering must still cover exactly once.
  auto prog = odd_3d_program(ir::DataType::f64);
  const LoopPlan plan = build_loop_plan(prog->primary_schedule());
  TemporalOptions opts;
  opts.wedge_depth = 3;
  opts.wedge_width = 1;
  const TemporalPlan tp = lower_temporal(plan, 3, 2, 1, 6, opts);
  EXPECT_GE(tp.dep_span, 6);  // ceil(3 * 2 / 1)
  expect_each_step_covers_once(tp.full, tp.extent, tp.ndim);
}

TEST(LowerTemporal, SingleRowGridDegeneratesToOneWedge) {
  auto prog = std::make_unique<dsl::Program>("row1");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 1, 1, ir::DataType::f64, 1, 37);
  auto& k = prog->kernel("k", {j, i},
                         dsl::ExprH(0.5) * B(j, i - 1) + dsl::ExprH(0.5) * B(j, i + 1));
  k.tile({1, 8}).reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
  prog->def_stencil("st", B, k[prog->t() - 1]);

  const LoopPlan plan = build_loop_plan(prog->primary_schedule());
  TemporalOptions opts;
  opts.wedge_depth = 4;
  const TemporalPlan tp = lower_temporal(plan, 2, 1, 1, 8, opts);
  expect_each_step_covers_once(tp.full, tp.extent, tp.ndim);
  EXPECT_TRUE(temporal_bit_identical<double>(prog->stencil(), prog->primary_schedule(), 8,
                                             77, opts));
}

TEST(LowerTemporal, ScheduleTimeTileFeedsDefaults) {
  // time_tile() on the schedule must reach the lowering through the
  // LoopPlan when no explicit options override it.
  auto prog = odd_2d_program(/*time_depth=*/2, /*time_width=*/7);
  const LoopPlan plan = build_loop_plan(prog->primary_schedule());
  EXPECT_EQ(plan.time_depth, 2);
  EXPECT_EQ(plan.time_width, 7);
  const TemporalPlan tp = lower_temporal(plan, 4, 1, 1, 9);
  EXPECT_EQ(tp.wedge_depth, 2);
  EXPECT_EQ(tp.wedge_width, 7);
  expect_each_step_covers_once(tp.full, tp.extent, tp.ndim);
}

// ---- differential battery ------------------------------------------------

TEST(TemporalVsInterpreter, TimeDepthByWedgeDepthBattery2D) {
  auto prog = odd_2d_program();
  for (std::int64_t steps : {1, 2, 3, 7, 16}) {
    for (std::int64_t depth : {1, 2, 3, 4}) {
      TemporalOptions opts;
      opts.wedge_depth = depth;
      SCOPED_TRACE("steps=" + std::to_string(steps) + " depth=" + std::to_string(depth));
      EXPECT_TRUE(temporal_bit_identical<double>(prog->stencil(), prog->primary_schedule(),
                                                 steps, 1000 + static_cast<std::uint64_t>(steps),
                                                 opts));
    }
  }
}

TEST(TemporalVsInterpreter, TimeDepthByWedgeDepthBattery3D) {
  for (auto dtype : {ir::DataType::f64, ir::DataType::f32}) {
    auto prog = odd_3d_program(dtype);
    for (std::int64_t steps : {1, 3, 7, 16}) {
      for (std::int64_t depth : {1, 2, 4}) {
        TemporalOptions opts;
        opts.wedge_depth = depth;
        SCOPED_TRACE("dtype=" + std::string(dtype == ir::DataType::f64 ? "f64" : "f32") +
                     " steps=" + std::to_string(steps) + " depth=" + std::to_string(depth));
        if (dtype == ir::DataType::f64) {
          EXPECT_TRUE(temporal_bit_identical<double>(
              prog->stencil(), prog->primary_schedule(), steps,
              2000 + static_cast<std::uint64_t>(steps), opts));
        } else {
          EXPECT_TRUE(temporal_bit_identical<float>(
              prog->stencil(), prog->primary_schedule(), steps,
              3000 + static_cast<std::uint64_t>(steps), opts));
        }
      }
    }
  }
}

TEST(TemporalVsInterpreter, WedgeDepthBeyondTimeWindowBitIdentical) {
  // Depth 4 against a 2-deep window: in-place slot rotation overwrites a
  // step's inputs within the same wedge pass; the skew proof says that is
  // safe, and this pins it.
  auto prog = odd_3d_program(ir::DataType::f64);
  TemporalOptions opts;
  opts.wedge_depth = 4;
  opts.wedge_width = 3;
  EXPECT_TRUE(temporal_bit_identical<double>(prog->stencil(), prog->primary_schedule(), 9,
                                             41, opts));
}

TEST(TemporalVsInterpreter, ParallelWavefrontBitIdentical) {
  // Parallel schedule + injected 4-worker pool: the chunk-level DAG with
  // spin-wait counters must agree with the serial interpreter bitwise.
  auto prog = std::make_unique<dsl::Program>("ttpar");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 33, 21);
  auto& k = prog->kernel("k", {j, i},
                         dsl::ExprH(0.3) * B(j, i) + dsl::ExprH(0.25) * B(j - 1, i) +
                             dsl::ExprH(0.25) * B(j + 1, i) +
                             dsl::ExprH(0.1) * B(j, i - 1) + dsl::ExprH(0.1) * B(j, i + 1));
  k.tile({4, 21}).reorder({"j_outer", "i_outer", "j_inner", "i_inner"});
  k.parallel("j_outer", 4);
  prog->def_stencil("st", B, 0.6 * k[prog->t() - 1] + 0.4 * k[prog->t() - 2]);

  for (std::int64_t depth : {2, 3, 7}) {
    TemporalOptions opts;
    opts.wedge_depth = depth;
    opts.pool = &test_pool();
    SCOPED_TRACE("depth=" + std::to_string(depth));
    EXPECT_TRUE(temporal_bit_identical<double>(prog->stencil(), prog->primary_schedule(),
                                               16, 500 + static_cast<std::uint64_t>(depth),
                                               opts));
  }
}

TEST(TemporalVsInterpreter, OversubscribedParallelPlanBitIdentical) {
  // 16 requested threads over a 4-worker pool and only a handful of
  // wedges: chunk count must clamp and the wavefront must still drain.
  auto prog = std::make_unique<dsl::Program>("ttover");
  auto j = prog->var("j"), i = prog->var("i");
  dsl::GridRef B = prog->def_tensor_2d_timewin("B", 2, 1, ir::DataType::f64, 7, 29);
  auto& k = prog->kernel("k", {j, i},
                         dsl::ExprH(0.5) * B(j - 1, i) + dsl::ExprH(0.5) * B(j + 1, i));
  k.parallel("j", 16);
  prog->def_stencil("st", B, 0.5 * k[prog->t() - 1] + 0.5 * k[prog->t() - 2]);

  TemporalOptions opts;
  opts.wedge_depth = 3;
  opts.wedge_width = 2;
  opts.pool = &test_pool();
  EXPECT_TRUE(temporal_bit_identical<double>(prog->stencil(), prog->primary_schedule(), 11,
                                             87, opts));
}

TEST(TemporalVsInterpreter, NonZeroHaloFallsBackReported) {
  // Periodic boundaries need a fresh halo every step; the temporal engine
  // must refuse — loudly — and produce per-step-engine results.
  auto prog = odd_2d_program();
  const auto& st = prog->stencil();
  GridStorage<double> gi(st.state());
  GridStorage<double> gt(st.state());
  for (int s = 0; s < gi.slots(); ++s) {
    gi.fill_random(s, 11 + static_cast<std::uint64_t>(s));
    gt.fill_random(s, 11 + static_cast<std::uint64_t>(s));
  }
  run_scheduled_interpreted(st, prog->primary_schedule(), gi, 1, 5, Boundary::Periodic);
  TemporalExecInfo info;
  TemporalOptions opts;
  opts.wedge_depth = 3;
  run_scheduled_temporal(st, prog->primary_schedule(), gt, 1, 5, Boundary::Periodic, {},
                         nullptr, &info, opts);
  EXPECT_FALSE(info.temporal);
  EXPECT_NE(info.fallback_reason.find("per-step halo"), std::string::npos)
      << info.fallback_reason;
  const int fs = gi.slot_for_time(5);
  EXPECT_EQ(gi.interior_values(fs), gt.interior_values(fs));
}

TEST(TemporalVsInterpreter, RandomCasesShrinkOnFailure) {
  const auto run_case = [](const check::CaseSpec& spec) -> ::testing::AssertionResult {
    auto prog = check::build_program(spec);
    if (!linearize_stencil(prog->stencil(), prog->bindings()).has_value())
      return ::testing::AssertionSuccess();
    TemporalOptions opts;
    opts.wedge_depth = 1 + static_cast<std::int64_t>(spec.seed % 4);
    opts.pool = &test_pool();
    return temporal_bit_identical<double>(prog->stencil(), prog->primary_schedule(),
                                          spec.timesteps, spec.seed * 131 + 7, opts);
  };

  int ran = 0;
  for (std::uint64_t seed = 1; seed <= 60 && ran < 16; ++seed) {
    const auto spec = check::random_case(seed);
    {
      auto prog = check::build_program(spec);
      if (!linearize_stencil(prog->stencil(), prog->bindings()).has_value()) continue;
    }
    ++ran;
    const auto result = run_case(spec);
    if (result) continue;
    // Shrink towards a minimal reproducer before failing, so the assert
    // message is actionable (same flow as tools/msc-conform).
    const auto shrunk = check::shrink_case(
        spec, [&](const check::CaseSpec& s) { return !static_cast<bool>(run_case(s)); });
    FAIL() << "temporal engine diverged; minimal reproducer after "
           << shrunk.accepted << " shrink steps:\n"
           << check::describe(shrunk.spec) << "\n" << result.message();
  }
  EXPECT_GE(ran, 10) << "case generator stopped producing affine cases";
}

}  // namespace
}  // namespace msc::exec
